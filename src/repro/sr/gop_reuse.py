"""GOP-aware SR reuse: warp the previous SR output, refresh dirty tiles.

On low-motion P-frames most of the previous frame's SR output is still
valid — the codec tells us exactly where it is not. This module implements
the compressed-domain warp-and-refresh cache (NEMO-style anchor reuse,
specialized to the RoI client):

1. the decoded luma-grid motion field, upscaled to HR, warps the previous
   frame's SR canvas with one vectorized gather (:func:`warp_hr`);
2. the decoder's per-block residual-energy summary marks the *dirty*
   blocks — where the codec itself had to transmit a correction
   (:func:`dirty_block_mask`);
3. only dirty tiles re-enter the SR/bilinear paths and are composited
   into the warped canvas (:func:`composite_blocks`); everything else is
   reused for free.

Mandatory full refresh happens on I-frames and whenever the reference
chain breaks (a dropped/skipped frame — :class:`GOPSRCache` tracks frame
index continuity), mirroring the decoder's own GOP semantics.

Layering note: ``repro.sr`` sits below ``repro.codec``, so everything
here works on plain arrays (motion-vector grids, block-energy grids) that
the streaming client extracts from ``DecodedFrame``; the HR warp mirrors
``repro.codec.motion.compensate`` (same clip-and-gather convention,
generalized to (H, W, 3)) rather than importing it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..contracts import shaped

__all__ = [
    "REUSE_DIRTY_THRESHOLD",
    "GOPSRCache",
    "warp_hr",
    "dirty_block_mask",
    "composite_blocks",
]

#: Mean squared residual per pixel (summed over the three RGB channels,
#: pixel values in [0, 1]) at or above which a block is *dirty* and must
#: be re-upscaled. 1e-5 corresponds to an RMS residual of ~0.0018 per
#: channel (~0.5 of a uint8 step): below it the transmitted correction is
#: codec quantization noise and warping the previous SR output is
#: visually lossless; at or above it real texture or disocclusion changed
#: the block. The comparison is ``>=`` so a threshold of 0.0 marks every
#: block dirty (static blocks quantize to an exactly-zero residual) —
#: the bit-identity equivalence tests rely on that degenerate collapse.
REUSE_DIRTY_THRESHOLD = 1e-5


@shaped(reference="H W 3:f64", motion_vectors="BY BX 2:i")
def warp_hr(reference: np.ndarray, motion_vectors: np.ndarray, block: int) -> np.ndarray:
    """Warp an HR frame by a block motion field with one vectorized gather.

    ``motion_vectors`` is the decoded luma-grid field already scaled to HR
    units (``mv * scale``) and ``block`` the HR block side
    (``lr_block * scale``); the grid must cover the frame
    (``ceil`` division, exactly the codec's layout). Each output pixel
    reads ``reference[clip(y + dy), clip(x + dx)]`` with its block's
    displacement broadcast across the block — the same edge-clamped
    convention as ``repro.codec.motion.compensate``, per-pixel over all
    three channels at once.
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    h, w = reference.shape[:2]
    nby, nbx = motion_vectors.shape[:2]
    ph, pw = nby * block, nbx * block
    if ph < h or pw < w:
        raise ValueError(
            f"motion grid {nby}x{nbx} (block {block}) does not cover "
            f"frame {h}x{w}"
        )
    ref = reference
    if ph > h or pw > w:
        ref = np.pad(reference, ((0, ph - h), (0, pw - w), (0, 0)), mode="edge")
    mv = np.asarray(motion_vectors, dtype=np.int64)
    dy = np.repeat(np.repeat(mv[:, :, 0], block, axis=0), block, axis=1)
    dx = np.repeat(np.repeat(mv[:, :, 1], block, axis=0), block, axis=1)
    ys = np.clip(np.arange(ph, dtype=np.int64)[:, None] + dy, 0, ph - 1)
    xs = np.clip(np.arange(pw, dtype=np.int64)[None, :] + dx, 0, pw - 1)
    return ref[ys, xs][:h, :w]


@shaped(energy="BY BX:f64", pixel_counts="BY BX:i")
def dirty_block_mask(
    energy: np.ndarray, pixel_counts: np.ndarray, threshold: float
) -> np.ndarray:
    """Blocks whose mean squared residual per pixel is ``>= threshold``.

    ``energy`` is the decoder's per-block sum of squared residual;
    ``pixel_counts`` the ragged block-grid pixel counts, so the per-pixel
    comparison is evaluated as ``energy >= threshold * pixels`` without a
    division. ``>=`` makes threshold 0.0 mark everything dirty.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    return energy >= threshold * pixel_counts


@shaped(canvas="H W 3:f64", source="H W 3:f64", mask="BY BX:b")
def composite_blocks(
    canvas: np.ndarray, source: np.ndarray, mask: np.ndarray, block: int
) -> np.ndarray:
    """Overwrite ``canvas`` pixels of masked blocks with ``source`` (in place).

    ``mask`` is a block-grid boolean grid and ``block`` the block side in
    canvas pixels; the grid must cover the canvas (edge blocks may be
    ragged). Returns the canvas for chaining.
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    h, w = canvas.shape[:2]
    nby, nbx = mask.shape
    if nby * block < h or nbx * block < w:
        raise ValueError(
            f"mask grid {nby}x{nbx} (block {block}) does not cover "
            f"canvas {h}x{w}"
        )
    px = np.repeat(np.repeat(mask, block, axis=0), block, axis=1)[:h, :w]
    canvas[px] = source[px]
    return canvas


class GOPSRCache:
    """The previous frame's SR output plus reuse bookkeeping.

    The cache only vouches for its canvas when the warp chain is intact:
    the held frame must be the *immediately preceding* frame (index
    continuity) and the current frame a P-frame. Everything else —
    I-frames, a cold cache, a gap left by a dropped/skipped frame — is a
    mandatory full refresh, reported with a reason string that feeds the
    ``sr.reuse/*`` counters.
    """

    def __init__(self, threshold: float = REUSE_DIRTY_THRESHOLD) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.hr: Optional[np.ndarray] = None
        self.last_index: Optional[int] = None

    def reset(self) -> None:
        self.hr = None
        self.last_index = None

    def refresh_reason(self, index: int, is_reference: bool) -> Optional[str]:
        """Why this frame must take the full-SR path; None to warp-reuse."""
        if is_reference:
            return "reference_frame"
        if self.hr is None:
            return "cold_cache"
        if self.last_index is None or index != self.last_index + 1:
            return "chain_break"
        return None

    def store(self, hr: np.ndarray, index: int) -> None:
        """Record this frame's SR output as the next frame's warp source."""
        self.hr = hr
        self.last_index = index
