"""In-repo training of the SR models on rendered game content.

Training pairs are (bilinear-downsampled LR patch, native HR patch)
crops from high-resolution renders of the synthetic game scenes —
the standard SISR supervision setup. Patches are importance-sampled
toward detailed regions (high local variance), where SR has something to
restore, which is also where GameStreamSR places its RoI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..neural.layers import Module
from ..neural.loss import l1_loss
from ..neural.optim import Adam, clip_grad_norm
from ..neural.tensor import Tensor
from .interpolate import resize

__all__ = ["PatchDataset", "TrainReport", "extract_patches", "train_sr_model"]


@dataclass
class PatchDataset:
    """Paired LR/HR patches as (N, C, h, w) arrays."""

    lr: np.ndarray
    hr: np.ndarray

    def __post_init__(self) -> None:
        if len(self.lr) != len(self.hr):
            raise ValueError(
                f"LR/HR count mismatch: {len(self.lr)} vs {len(self.hr)}"
            )
        if len(self.lr) == 0:
            raise ValueError("empty patch dataset")

    def __len__(self) -> int:
        return len(self.lr)

    def batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        order = rng.permutation(len(self.lr))
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            yield self.lr[idx], self.hr[idx]


def extract_patches(
    hr_frames: Sequence[np.ndarray],
    scale: int = 2,
    patch_lr: int = 24,
    per_frame: int = 24,
    seed: int = 0,
    detail_bias: float = 0.75,
    codec_quality: int | None = None,
) -> PatchDataset:
    """Crop paired patches from HR frames (LR = bilinear downsample).

    ``detail_bias`` is the fraction of patches drawn from the top-variance
    candidate crops; the remainder is uniform (keeps flat regions
    represented so the model does not hallucinate texture everywhere).
    ``codec_quality`` additionally round-trips the LR frame through the
    streaming codec at that quantizer quality before cropping, so the
    model trains on the same compressed distribution it sees when deployed
    at the client (the online per-video training trick NEMO relies on).
    """
    if not hr_frames:
        raise ValueError("no HR frames supplied")
    if patch_lr < 8:
        raise ValueError(f"patch_lr must be >= 8, got {patch_lr}")
    rng = np.random.default_rng(seed)
    patch_hr = patch_lr * scale
    lr_list: List[np.ndarray] = []
    hr_list: List[np.ndarray] = []

    for frame in hr_frames:
        frame = np.asarray(frame, dtype=np.float64)  # reprolint: disable=dtype-discipline -- f64 training/state policy
        h, w = frame.shape[:2]
        if h < patch_hr or w < patch_hr:
            raise ValueError(f"frame {h}x{w} smaller than HR patch {patch_hr}")
        lr_h, lr_w = h // scale, w // scale
        lr_frame = resize(frame, lr_h, lr_w, method="bilinear")
        if codec_quality is not None:
            # Imported lazily: the codec package is independent of repro.sr.
            from ..codec.decoder import VideoDecoder
            from ..codec.encoder import VideoEncoder

            encoder = VideoEncoder(gop_size=1, quality=codec_quality)
            lr_frame = VideoDecoder().decode_frame(encoder.encode_frame(lr_frame)).rgb

        n_candidates = per_frame * 4
        ys = rng.integers(0, lr_h - patch_lr + 1, size=n_candidates)
        xs = rng.integers(0, lr_w - patch_lr + 1, size=n_candidates)
        hr_crops = [
            frame[y * scale : y * scale + patch_hr, x * scale : x * scale + patch_hr]
            for y, x in zip(ys, xs)
        ]
        variances = np.array([float(c.var()) for c in hr_crops])

        n_detail = int(round(per_frame * detail_bias))
        detail_idx = np.argsort(variances)[::-1][:n_detail]
        uniform_idx = rng.choice(n_candidates, size=per_frame - n_detail, replace=False)
        for idx in list(detail_idx) + list(uniform_idx):
            y, x = int(ys[int(idx)]), int(xs[int(idx)])
            hr_list.append(hr_crops[int(idx)].transpose(2, 0, 1))
            lr_list.append(
                lr_frame[y : y + patch_lr, x : x + patch_lr].transpose(2, 0, 1)
            )

    return PatchDataset(lr=np.stack(lr_list), hr=np.stack(hr_list))


@dataclass(frozen=True)
class TrainReport:
    """Loss trajectory of one training run."""

    losses: tuple[float, ...]
    epochs: int
    n_patches: int

    @property
    def initial_loss(self) -> float:
        return self.losses[0]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train_sr_model(
    model: Module,
    dataset: PatchDataset,
    epochs: int = 8,
    batch_size: int = 8,
    lr: float = 1e-3,
    seed: int = 0,
    grad_clip: float = 5.0,
) -> TrainReport:
    """L1-train ``model`` on the dataset; returns the per-epoch losses."""
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    model.train()
    losses: List[float] = []
    for epoch in range(epochs):
        epoch_losses = []
        for lr_batch, hr_batch in dataset.batches(batch_size, rng):
            optimizer.zero_grad()
            pred = model(Tensor(lr_batch))
            loss = l1_loss(pred, Tensor(hr_batch))
            loss.backward()
            clip_grad_norm(model.parameters(), grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)))
    model.eval()
    return TrainReport(losses=tuple(losses), epochs=epochs, n_patches=len(dataset))
