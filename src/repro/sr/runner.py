"""Run an SR model over images, RoIs, or tiles.

Bridges the (H, W, C)-in-[0, 1] image world and the model's
(N, C, H, W) tensor world, with optional overlap-tiled inference so the
full-frame baselines can upscale arbitrarily large frames with bounded
memory (and so the per-tile compute matches how mobile NPU delegates
partition large inputs).

Tiled inference is **batched**: the frame is reflect-padded onto the tile
grid, every (tile x tile) window is gathered into one (N, C, th, tw)
batch, and the model runs a single forward per frame (chunked by
``batch_size`` to bound im2col memory). That converts dozens of small
BLAS calls into a few large ones — together with the float32 no-graph
inference path in :mod:`repro.neural.tensor` this is what makes the
session matrix tractable (see "Performance notes" in README.md). The
pre-batching per-tile loop survives as ``batched=False`` so the hotpath
bench can keep measuring the speedup against it.
"""

from __future__ import annotations

import numpy as np

from ..contracts import shaped
from ..neural.layers import Module
from ..neural.tensor import Tensor, get_inference_dtype, no_grad

__all__ = ["SRRunner"]


def _pad_reflect2d(
    image: np.ndarray, top: int, bottom: int, left: int, right: int
) -> np.ndarray:
    """Reflect-pad an (H, W, C) image, degrading to edge-replication when
    the image is smaller than the requested halo (np.pad's reflect mode
    requires pad < dim).

    The degradation is chosen **per axis**: a short-but-wide tile whose
    vertical halo exceeds its height still reflects horizontally, only
    the vertical padding falls back to edge replication.
    """
    h, w = image.shape[:2]
    mode_y = "reflect" if max(top, bottom) < h else "edge"
    mode_x = "reflect" if max(left, right) < w else "edge"
    if mode_y == mode_x:
        return np.pad(image, ((top, bottom), (left, right), (0, 0)), mode=mode_y)
    padded = np.pad(image, ((top, bottom), (0, 0), (0, 0)), mode=mode_y)
    return np.pad(padded, ((0, 0), (left, right), (0, 0)), mode=mode_x)


class SRRunner:
    """Inference wrapper around an SR :class:`~repro.neural.Module`."""

    def __init__(self, model: Module, scale: int | None = None) -> None:
        self.model = model
        self.scale = scale if scale is not None else getattr(model, "scale", None)
        if self.scale is None or self.scale < 1:
            raise ValueError("model has no valid `scale`; pass scale= explicitly")
        model.eval()

    def _to_batch(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=np.float64)  # reprolint: disable=dtype-discipline -- seam-normalized before inference-dtype cast
        if image.ndim == 2:
            image = image[:, :, None]
        if image.ndim != 3:
            raise ValueError(f"expected (H, W[, C]) image, got {image.shape}")
        return image.transpose(2, 0, 1)[None]

    @shaped(image="H W:n|H W C:n")
    def upscale(self, image: np.ndarray) -> np.ndarray:
        """Upscale a whole (H, W, C) image in one forward pass."""
        batch = self._to_batch(image)
        with no_grad():
            out = self.model(Tensor(batch)).numpy()
        result = out[0].transpose(1, 2, 0)
        if np.asarray(image).ndim == 2:
            result = result[:, :, 0]
        return np.clip(result, 0.0, 1.0)

    @shaped(tiles="N H W C:n")
    def upscale_batch(
        self, tiles: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """Upscale an ``(N, H, W, C)`` stack of equal-size tiles.

        The batched seam the :mod:`repro.sr.backends` zoo and the
        dispatcher execute through: one model forward per ``batch_size``
        chunk, output ``(N, H*s, W*s, C)`` in tile order.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        tiles = np.asarray(tiles)
        n, _, _, c = tiles.shape
        s = self.scale
        if n == 0:
            h, w = tiles.shape[1:3]
            return np.empty((0, h * s, w * s, c), dtype=get_inference_dtype())
        batch = tiles.transpose(0, 3, 1, 2).astype(
            get_inference_dtype(), copy=False
        )
        with no_grad():
            chunks = [
                self.model(Tensor(batch[start : start + batch_size])).numpy()
                for start in range(0, n, batch_size)
            ]
        out = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return np.clip(out.transpose(0, 2, 3, 1), 0.0, 1.0)

    @shaped(image="H W:n|H W C:n")
    def upscale_tiled(
        self,
        image: np.ndarray,
        tile: int = 64,
        overlap: int = 8,
        batched: bool = True,
        batch_size: int = 64,
    ) -> np.ndarray:
        """Upscale via overlapping tiles (seam-free full-frame inference).

        ``batched=True`` (the default) runs all tiles through the model as
        one batch; ``batched=False`` keeps the historical one-tile-per-
        forward loop (slower, used as a benchmark baseline).
        """
        if tile < 2 * overlap + 1:
            raise ValueError(f"tile ({tile}) too small for overlap ({overlap})")
        if not batched:
            return self._upscale_tiled_loop(image, tile, overlap)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")

        image = np.asarray(image, dtype=np.float64)  # reprolint: disable=dtype-discipline -- seam-normalized before inference-dtype cast
        squeeze = image.ndim == 2
        if squeeze:
            image = image[:, :, None]
        h, w, c = image.shape
        s = self.scale

        # Clamp the tile per axis so a tile larger than the frame degrades
        # to whole-frame inference instead of padding up to (tile x tile)
        # and wasting forward compute on reflection filler.
        tile_h = min(tile, h + 2 * overlap)
        tile_w = min(tile, w + 2 * overlap)
        step_h = tile_h - 2 * overlap
        step_w = tile_w - 2 * overlap
        ny = -(-h // step_h)  # ceil division
        nx = -(-w // step_w)
        # Halo on every side; bottom/right additionally fill the last
        # partial tile so all windows are exactly (tile_h x tile_w).
        padded = _pad_reflect2d(
            image,
            overlap,
            ny * step_h - h + overlap,
            overlap,
            nx * step_w - w + overlap,
        )
        # Gather straight into the active inference dtype (float32 under
        # the default policy) so the forward never re-casts per chunk.
        padded = padded.astype(get_inference_dtype(), copy=False)

        tiles = np.empty((ny * nx, c, tile_h, tile_w), dtype=padded.dtype)
        for iy in range(ny):
            for ix in range(nx):
                window = padded[
                    iy * step_h : iy * step_h + tile_h,
                    ix * step_w : ix * step_w + tile_w,
                ]
                tiles[iy * nx + ix] = window.transpose(2, 0, 1)

        with no_grad():
            chunks = [
                self.model(Tensor(tiles[start : start + batch_size])).numpy()
                for start in range(0, len(tiles), batch_size)
            ]
        hr_tiles = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

        # Crop the halo off every HR tile and mosaic the cores.
        core = hr_tiles[
            :,
            :,
            overlap * s : (overlap + step_h) * s,
            overlap * s : (overlap + step_w) * s,
        ]
        out = np.empty((ny * step_h * s, nx * step_w * s, c), dtype=core.dtype)
        for iy in range(ny):
            for ix in range(nx):
                out[
                    iy * step_h * s : (iy + 1) * step_h * s,
                    ix * step_w * s : (ix + 1) * step_w * s,
                ] = core[iy * nx + ix].transpose(1, 2, 0)
        out = out[: h * s, : w * s]
        if squeeze:
            out = out[:, :, 0]
        return np.clip(out, 0.0, 1.0)

    @shaped(image="H W 3:n", origins="N 2:i")
    def upscale_windows(
        self,
        image: np.ndarray,
        origins: np.ndarray,
        tile: int,
        halo: int = 8,
        batch_size: int = 64,
    ) -> np.ndarray:
        """Upscale caller-chosen aligned (tile x tile) windows in one batch.

        Unlike :meth:`upscale_tiled` this does not cover the frame: the
        caller names the LR window origins (``(N, 2)`` of ``(y, x)``,
        e.g. the dirty blocks of the GOP-reuse mask). Each window is
        forwarded with ``halo`` pixels of surrounding frame context (the
        same reflect-pad convention as tiled inference) and the HR core —
        ``(tile*s, tile*s, 3)`` per window, origin order preserved — is
        returned as an ``(N, tile*s, tile*s, 3)`` stack. Windows may
        start at any non-negative origin; those running past the frame
        edge read reflect/edge padding, like the last partial tile of
        :meth:`upscale_tiled`.
        """
        if tile < 1:
            raise ValueError(f"tile must be >= 1, got {tile}")
        if halo < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        image = np.asarray(image, dtype=np.float64)  # reprolint: disable=dtype-discipline -- seam-normalized before inference-dtype cast
        h, w, c = image.shape
        s = self.scale
        origins = np.asarray(origins, dtype=np.int64)
        n = len(origins)
        if n == 0:
            return np.empty((0, tile * s, tile * s, c), dtype=get_inference_dtype())
        if origins.min() < 0:
            raise ValueError("window origins must be >= 0")

        pad_bottom = halo + max(0, int(origins[:, 0].max()) + tile - h)
        pad_right = halo + max(0, int(origins[:, 1].max()) + tile - w)
        padded = _pad_reflect2d(image, halo, pad_bottom, halo, pad_right)
        padded = padded.astype(get_inference_dtype(), copy=False)

        win = tile + 2 * halo
        tiles = np.empty((n, c, win, win), dtype=padded.dtype)
        for i, (oy, ox) in enumerate(origins):
            # Image coords (oy - halo ..) == padded coords (oy ..).
            tiles[i] = padded[oy : oy + win, ox : ox + win].transpose(2, 0, 1)

        with no_grad():
            chunks = [
                self.model(Tensor(tiles[start : start + batch_size])).numpy()
                for start in range(0, n, batch_size)
            ]
        out = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        core = out[:, :, halo * s : (halo + tile) * s, halo * s : (halo + tile) * s]
        return np.clip(core.transpose(0, 2, 3, 1), 0.0, 1.0)

    def _upscale_tiled_loop(
        self, image: np.ndarray, tile: int, overlap: int
    ) -> np.ndarray:
        """Pre-batching reference implementation: one forward per tile."""
        image = np.asarray(image, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen pre-batching reference path
        squeeze = image.ndim == 2
        if squeeze:
            image = image[:, :, None]
        h, w, c = image.shape
        s = self.scale
        out = np.zeros((h * s, w * s, c), dtype=np.float64)

        step = tile - 2 * overlap
        y = 0
        while y < h:
            x = 0
            core_h = min(step, h - y)
            y0 = max(y - overlap, 0)
            y1 = min(y + core_h + overlap, h)
            while x < w:
                core_w = min(step, w - x)
                x0 = max(x - overlap, 0)
                x1 = min(x + core_w + overlap, w)
                tile_hr = self.upscale(image[y0:y1, x0:x1])
                # Crop the halo back off in HR space.
                cy = (y - y0) * s
                cx = (x - x0) * s
                out[y * s : (y + core_h) * s, x * s : (x + core_w) * s] = tile_hr[
                    cy : cy + core_h * s, cx : cx + core_w * s
                ]
                x += step
            y += step
        if squeeze:
            out = out[:, :, 0]
        return np.clip(out, 0.0, 1.0)
