"""Run an SR model over images, RoIs, or tiles.

Bridges the (H, W, C)-in-[0, 1] image world and the model's
(N, C, H, W) tensor world, with optional overlap-tiled inference so the
full-frame baselines can upscale arbitrarily large frames with bounded
memory (and so the per-tile compute matches how mobile NPU delegates
partition large inputs).
"""

from __future__ import annotations

import numpy as np

from ..neural.layers import Module
from ..neural.tensor import Tensor, no_grad

__all__ = ["SRRunner"]


class SRRunner:
    """Inference wrapper around an SR :class:`~repro.neural.Module`."""

    def __init__(self, model: Module, scale: int | None = None) -> None:
        self.model = model
        self.scale = scale if scale is not None else getattr(model, "scale", None)
        if self.scale is None or self.scale < 1:
            raise ValueError("model has no valid `scale`; pass scale= explicitly")
        model.eval()

    def _to_batch(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=np.float64)
        if image.ndim == 2:
            image = image[:, :, None]
        if image.ndim != 3:
            raise ValueError(f"expected (H, W[, C]) image, got {image.shape}")
        return image.transpose(2, 0, 1)[None]

    def upscale(self, image: np.ndarray) -> np.ndarray:
        """Upscale a whole (H, W, C) image in one forward pass."""
        batch = self._to_batch(image)
        with no_grad():
            out = self.model(Tensor(batch)).numpy()
        result = out[0].transpose(1, 2, 0)
        if np.asarray(image).ndim == 2:
            result = result[:, :, 0]
        return np.clip(result, 0.0, 1.0)

    def upscale_tiled(
        self, image: np.ndarray, tile: int = 64, overlap: int = 8
    ) -> np.ndarray:
        """Upscale via overlapping tiles (seam-free full-frame inference)."""
        if tile < 2 * overlap + 1:
            raise ValueError(f"tile ({tile}) too small for overlap ({overlap})")
        image = np.asarray(image, dtype=np.float64)
        squeeze = image.ndim == 2
        if squeeze:
            image = image[:, :, None]
        h, w, c = image.shape
        s = self.scale
        out = np.zeros((h * s, w * s, c))

        step = tile - 2 * overlap
        y = 0
        while y < h:
            x = 0
            core_h = min(step, h - y)
            y0 = max(y - overlap, 0)
            y1 = min(y + core_h + overlap, h)
            while x < w:
                core_w = min(step, w - x)
                x0 = max(x - overlap, 0)
                x1 = min(x + core_w + overlap, w)
                tile_hr = self.upscale(image[y0:y1, x0:x1])
                # Crop the halo back off in HR space.
                cy = (y - y0) * s
                cx = (x - x0) * s
                out[y * s : (y + core_h) * s, x * s : (x + core_w) * s] = tile_hr[
                    cy : cy + core_h * s, cx : cx + core_w * s
                ]
                x += step
            y += step
        if squeeze:
            out = out[:, :, 0]
        return np.clip(out, 0.0, 1.0)
