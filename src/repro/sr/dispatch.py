"""MobiSR-style difficulty-aware tile dispatch across SR backends.

Not every RoI tile needs the big model: flat sky and static HUD regions
upscale indistinguishably under a cheap filter, while textured geometry
shows the EDSR-vs-bilinear gap. MobiSR exploits this by scoring each
patch's *difficulty* and routing easy patches to compact models on idle
processors. :class:`DifficultyDispatcher` reproduces that scheme on the
modeled platform:

1. **Difficulty metric** (:func:`tile_difficulty`): per-tile gradient
   energy + luma variance of the decoded LR patch, computed with one
   summed-area table per statistic — flat tiles score near zero, edges
   and texture score high. When the decoded frame carries codec residual
   summaries (the PR-7 SAT ledger,
   :meth:`~repro.codec.decoder.DecodedFrame.residual_block_energy`), the
   caller passes them as ``extra_energy``: heavy-residual tiles are
   exactly where warp-style shortcuts fail, so they bias toward the big
   model.
2. **Budgeted greedy routing** (:meth:`DifficultyDispatcher.plan`):
   tiles are visited hardest-first and claim the best-quality backend
   whose engine stays within the per-frame latency budget; engines
   (NPU / GPU / CPU) run concurrently, so the modeled stage latency is
   the *max* over engine totals, and each backend's time is its anchor
   curve evaluated at the total pixels routed to it (one batched
   invocation per backend per frame). Tiles that fit nowhere overflow
   to the cheapest backend and are counted.
3. **Execution** (:meth:`DifficultyDispatcher.run`): windows are
   gathered once with reflect-padded halo context, each backend
   upscales its group as one batch, and the HR cores are mosaicked back
   — the same overlap-tiled convention as
   :meth:`~repro.sr.runner.SRRunner.upscale_tiled`, so seams stay
   clean for every backend mix.

Layering note: the SAT block-sum helper mirrors
``repro.codec.residual.block_energy`` locally (``repro.sr`` sits below
``repro.codec`` in the import layering, same convention as
``repro.sr.gop_reuse`` mirroring the motion helpers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..contracts import shaped
from ..platform.device import DeviceProfile
from .backends import SRBackend
from .runner import _pad_reflect2d

__all__ = [
    "DispatchPlan",
    "DifficultyDispatcher",
    "tile_difficulty",
]

#: Rec. 601 luma weights (the codec's own RGB->Y convention).
_LUMA = np.array([0.299, 0.587, 0.114])


def _block_sum(values: np.ndarray, block: int) -> np.ndarray:
    """Per-block sums of a 2-D field on a ``block``-aligned grid.

    One summed-area table + four gathers, ragged edge blocks included —
    the same scheme as ``repro.codec.residual.block_energy`` (mirrored
    locally; see the module layering note).
    """
    h, w = values.shape
    ny = -(-h // block)
    nx = -(-w // block)
    sat = np.zeros((h + 1, w + 1), dtype=np.float64)
    np.cumsum(values, axis=0, out=sat[1:, 1:])
    np.cumsum(sat[1:, 1:], axis=1, out=sat[1:, 1:])
    ys = np.minimum(np.arange(ny + 1, dtype=np.int64) * block, h)
    xs = np.minimum(np.arange(nx + 1, dtype=np.int64) * block, w)
    return (
        sat[np.ix_(ys[1:], xs[1:])]
        - sat[np.ix_(ys[1:], xs[:-1])]
        - sat[np.ix_(ys[:-1], xs[1:])]
        + sat[np.ix_(ys[:-1], xs[:-1])]
    )


def _block_pixels(h: int, w: int, block: int) -> np.ndarray:
    """Pixel count of each (possibly ragged) block on the grid."""
    ny = -(-h // block)
    nx = -(-w // block)
    iy = np.arange(ny, dtype=np.int64)
    ix = np.arange(nx, dtype=np.int64)
    bh = np.minimum((iy + 1) * block, h) - iy * block
    bw = np.minimum((ix + 1) * block, w) - ix * block
    return bh[:, None].astype(np.float64) * bw[None, :]  # reprolint: disable=dtype-discipline -- planning statistic, frozen f64 policy


@shaped(patch="H W 3:n")
def tile_difficulty(
    patch: np.ndarray,
    tile: int,
    extra_energy: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-tile difficulty of an (H, W, 3) LR patch in [0, 1].

    Mean-per-pixel gradient energy plus luma variance over each
    ``tile x tile`` grid cell (ragged edge tiles normalized by their
    true pixel count, so partial tiles compare fairly). ``extra_energy``
    is an optional per-tile energy hint on the same grid — e.g. the
    codec's residual block energies over the patch — added after the
    same per-pixel normalization. Returns an (ny, nx) float64 array.
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    patch = np.asarray(patch, dtype=np.float64)  # reprolint: disable=dtype-discipline -- analysis statistic, not the inference path
    h, w = patch.shape[:2]
    luma = patch @ _LUMA
    # Forward differences; same-shape fields keep the SAT grids aligned.
    gy = np.zeros_like(luma)
    gx = np.zeros_like(luma)
    gy[:-1] = np.diff(luma, axis=0)
    gx[:, :-1] = np.diff(luma, axis=1)
    grad = gy * gy + gx * gx

    pixels = _block_pixels(h, w, tile)
    grad_pp = _block_sum(grad, tile) / pixels
    mean = _block_sum(luma, tile) / pixels
    var_pp = np.maximum(_block_sum(luma * luma, tile) / pixels - mean * mean, 0.0)
    difficulty = grad_pp + var_pp
    if extra_energy is not None:
        extra = np.asarray(extra_energy, dtype=np.float64)  # reprolint: disable=dtype-discipline -- planning statistic, frozen f64 policy
        if extra.shape != difficulty.shape:
            raise ValueError(
                f"extra_energy shape {extra.shape} != tile grid {difficulty.shape}"
            )
        difficulty = difficulty + extra / pixels
    return difficulty


@dataclass(frozen=True)
class DispatchPlan:
    """Routing decision for one patch: who upscales which tile."""

    #: Flat (ny*nx,) backend index per tile, row-major over the grid.
    assignment: np.ndarray
    #: Modeled per-engine busy time (each backend's anchor curve at its
    #: total routed pixels, summed per engine).
    engine_ms: Dict[str, float]
    #: Modeled busy time per backend, by name (one batched invocation
    #: at the backend's total routed pixels).
    backend_ms: Dict[str, float]
    #: Tiles routed to each backend, by name.
    backend_tiles: Dict[str, int]
    budget_ms: float
    #: Tiles no backend could fit under the budget (sent to the
    #: cheapest backend anyway — the budget is a target, not a drop).
    overflow_tiles: int
    mean_difficulty: float

    @property
    def upscale_ms(self) -> float:
        """Modeled stage latency: engines run concurrently."""
        return max(self.engine_ms.values(), default=0.0)

    def meta(self) -> Dict[str, object]:
        """Span-metadata payload for ``sr.dispatch/*`` observability."""
        return {
            "tiles_total": int(self.assignment.size),
            "backend_tiles": dict(self.backend_tiles),
            "backend_ms": {k: round(v, 6) for k, v in self.backend_ms.items()},
            "engine_ms": {k: round(v, 6) for k, v in self.engine_ms.items()},
            "budget_ms": self.budget_ms,
            "overflow_tiles": self.overflow_tiles,
            "mean_difficulty": round(self.mean_difficulty, 6),
            "upscale_ms": round(self.upscale_ms, 6),
        }


@dataclass
class DifficultyDispatcher:
    """Route RoI tiles across a backend pool under a latency budget.

    ``backends`` must share one upscale factor; they are consulted in
    ``quality_rank`` order (best first) and the last-ranked backend is
    the overflow fallback. ``budget_ms`` bounds every engine's modeled
    busy time per frame; ``float("inf")`` routes everything to the best
    backend (useful as a sanity limit).
    """

    backends: Sequence[SRBackend]
    budget_ms: float
    tile: int = 16
    halo: int = 4
    _order: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("need at least one backend")
        scales = {b.scale for b in self.backends}
        if len(scales) != 1:
            raise ValueError(f"backends disagree on scale: {sorted(scales)}")
        names = [b.name for b in self.backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backend names: {names}")
        if self.budget_ms <= 0:
            raise ValueError(f"budget_ms must be positive, got {self.budget_ms}")
        if self.tile < 1 or self.halo < 0:
            raise ValueError("tile must be >= 1 and halo >= 0")
        ranks = np.array([b.quality_rank for b in self.backends])
        self._order = np.argsort(ranks, kind="stable")

    @property
    def scale(self) -> int:
        return self.backends[0].scale

    def plan(
        self,
        difficulty: np.ndarray,
        device: DeviceProfile,
        tile_pixels: Optional[float] = None,
    ) -> DispatchPlan:
        """Greedy hardest-first routing of a difficulty grid.

        ``tile_pixels`` overrides the modeled LR pixel load per tile
        (default ``tile**2``) — the streaming client plans at the
        *modeled* geometry (its share of the 720p RoI) while the
        difficulty grid comes from the eval-scale pixels, mirroring how
        every other client latency is modeled.
        """
        difficulty = np.asarray(difficulty, dtype=np.float64)  # reprolint: disable=dtype-discipline -- planning statistic, frozen f64 policy
        flat = difficulty.ravel()
        n = flat.size
        tile_px = float(self.tile * self.tile) if tile_pixels is None else float(tile_pixels)
        if tile_px <= 0:
            raise ValueError(f"tile_pixels must be positive, got {tile_px}")
        order = np.argsort(-flat, kind="stable")

        counts = [0] * len(self.backends)
        # Engine busy time is recomputed from each backend's curve at its
        # routed pixel total, so the NPU saturation term stays honest.
        engine_ms: Dict[str, float] = {}
        for b in self.backends:
            engine_ms.setdefault(b.engine, 0.0)

        def _backend_ms(idx: int, tiles: int) -> float:
            if tiles == 0:
                return 0.0
            return self.backends[idx].latency_ms(tiles * tile_px, device)

        assignment = np.empty(n, dtype=np.int64)
        fallback = int(self._order[-1])
        overflow = 0
        for t in order:
            placed = False
            for idx in self._order:
                idx = int(idx)
                b = self.backends[idx]
                delta = _backend_ms(idx, counts[idx] + 1) - _backend_ms(
                    idx, counts[idx]
                )
                if engine_ms[b.engine] + delta <= self.budget_ms:
                    assignment[t] = idx
                    counts[idx] += 1
                    engine_ms[b.engine] += delta
                    placed = True
                    break
            if not placed:
                b = self.backends[fallback]
                delta = _backend_ms(fallback, counts[fallback] + 1) - _backend_ms(
                    fallback, counts[fallback]
                )
                assignment[t] = fallback
                counts[fallback] += 1
                engine_ms[b.engine] += delta
                overflow += 1

        # Re-derive engine totals exactly from the final per-backend
        # pixel loads (the incremental deltas already telescope to the
        # same value; this keeps the report independent of visit order).
        engine_ms = {e: 0.0 for e in engine_ms}
        backend_tiles: Dict[str, int] = {}
        backend_ms: Dict[str, float] = {}
        for idx, b in enumerate(self.backends):
            ms = _backend_ms(idx, counts[idx])
            backend_tiles[b.name] = counts[idx]
            backend_ms[b.name] = ms
            engine_ms[b.engine] += ms
        return DispatchPlan(
            assignment=assignment,
            engine_ms=engine_ms,
            backend_ms=backend_ms,
            backend_tiles=backend_tiles,
            budget_ms=self.budget_ms,
            overflow_tiles=overflow,
            mean_difficulty=float(flat.mean()) if n else 0.0,
        )

    @shaped(patch="H W 3:n")
    def run(
        self,
        patch: np.ndarray,
        device: DeviceProfile,
        extra_energy: Optional[np.ndarray] = None,
        tile_pixels: Optional[float] = None,
    ) -> "tuple[np.ndarray, DispatchPlan]":
        """Score, route, and execute one LR patch; returns (HR, plan)."""
        patch = np.asarray(patch, dtype=np.float64)  # reprolint: disable=dtype-discipline -- seam-normalized before backend casts
        h, w = patch.shape[:2]
        s = self.scale
        difficulty = tile_difficulty(patch, self.tile, extra_energy)
        plan = self.plan(difficulty, device, tile_pixels=tile_pixels)
        ny, nx = difficulty.shape

        # Gather halo windows once (shared by every backend group), the
        # same reflect-pad convention as SRRunner tiled inference.
        tile, halo = self.tile, self.halo
        padded = _pad_reflect2d(
            patch,
            halo,
            ny * tile - h + halo,
            halo,
            nx * tile - w + halo,
        )
        win = tile + 2 * halo
        windows = np.empty((ny * nx, win, win, patch.shape[2]), dtype=padded.dtype)
        for iy in range(ny):
            for ix in range(nx):
                windows[iy * nx + ix] = padded[
                    iy * tile : iy * tile + win, ix * tile : ix * tile + win
                ]

        out = np.empty((ny * tile * s, nx * tile * s, patch.shape[2]), dtype=np.float64)
        for idx, backend in enumerate(self.backends):
            sel = np.flatnonzero(plan.assignment == idx)
            if sel.size == 0:
                continue
            hr = backend.upscale_batch(windows[sel])
            core = hr[:, halo * s : (halo + tile) * s, halo * s : (halo + tile) * s]
            for j, t in enumerate(sel):
                iy, ix = divmod(int(t), nx)
                out[
                    iy * tile * s : (iy + 1) * tile * s,
                    ix * tile * s : (ix + 1) * tile * s,
                ] = core[j]
        return np.clip(out[: h * s, : w * s], 0.0, 1.0), plan
