"""Classical (non-neural) image upscaling filters.

These implement the traditional interpolation family the paper contrasts with
DNN-based super resolution (Sec. II-A): nearest neighbour, bilinear
(``GL_LINEAR``, the filter GameStreamSR runs on the mobile GPU for non-RoI
pixels), bicubic (Catmull-Rom / Keys a=-0.5), and Lanczos.

All functions accept float images shaped ``(H, W)`` or ``(H, W, C)`` and
return the same dtype family (float64 in, float64 out). Coordinates follow
the standard "align corners = False" convention used by OpenGL texture
sampling and video codecs: output pixel centre ``(i + 0.5) / scale - 0.5``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..contracts import shaped

__all__ = [
    "upscale",
    "nearest",
    "bilinear",
    "bicubic",
    "lanczos",
    "resize",
    "FILTERS",
]


def _check_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)  # reprolint: disable=dtype-discipline -- documented f64-in/f64-out resampling
    if image.ndim not in (2, 3):
        raise ValueError(
            f"expected (H, W) or (H, W, C) image, got shape {image.shape}"
        )
    if image.shape[0] < 1 or image.shape[1] < 1:
        raise ValueError(f"image has empty spatial dims: {image.shape}")
    return image


def _source_coords(out_size: int, in_size: int) -> np.ndarray:
    """Map output pixel centres into input coordinate space."""
    scale = in_size / out_size
    return (np.arange(out_size, dtype=np.float64) + 0.5) * scale - 0.5


def nearest(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour resampling."""
    image = _check_image(image)
    ys = np.clip(np.round(_source_coords(out_h, image.shape[0])), 0, image.shape[0] - 1)
    xs = np.clip(np.round(_source_coords(out_w, image.shape[1])), 0, image.shape[1] - 1)
    return image[ys.astype(np.intp)][:, xs.astype(np.intp)]


@shaped(image="H W:n|H W C:n")
def bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resampling (the paper's GPU ``GL_LINEAR`` path)."""
    image = _check_image(image)
    in_h, in_w = image.shape[:2]

    ys = _source_coords(out_h, in_h)
    xs = _source_coords(out_w, in_w)

    y0 = np.clip(np.floor(ys), 0, in_h - 1).astype(np.intp)
    x0 = np.clip(np.floor(xs), 0, in_w - 1).astype(np.intp)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)

    wy = np.clip(ys - y0, 0.0, 1.0)
    wx = np.clip(xs - x0, 0.0, 1.0)
    if image.ndim == 3:
        wy = wy[:, None, None]
        wx = wx[None, :, None]
    else:
        wy = wy[:, None]
        wx = wx[None, :]

    top = image[y0][:, x0] * (1 - wx) + image[y0][:, x1] * wx
    bot = image[y1][:, x0] * (1 - wx) + image[y1][:, x1] * wx
    return top * (1 - wy) + bot * wy


def _cubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Keys cubic convolution kernel (a = -0.5 -> Catmull-Rom)."""
    x = np.abs(x)
    x2 = x * x
    x3 = x2 * x
    out = np.zeros_like(x)
    inner = x <= 1.0
    outer = (x > 1.0) & (x < 2.0)
    out[inner] = (a + 2) * x3[inner] - (a + 3) * x2[inner] + 1
    out[outer] = a * x3[outer] - 5 * a * x2[outer] + 8 * a * x[outer] - 4 * a
    return out


def _lanczos_kernel(x: np.ndarray, taps: int = 3) -> np.ndarray:
    """Lanczos windowed-sinc kernel with ``taps`` lobes."""
    x = np.asarray(x, dtype=np.float64)  # reprolint: disable=dtype-discipline -- documented f64-in/f64-out resampling
    out = np.zeros_like(x)
    mask = np.abs(x) < taps
    xm = x[mask]
    out[mask] = np.sinc(xm) * np.sinc(xm / taps)
    return out


def _separable_resample(
    image: np.ndarray,
    out_h: int,
    out_w: int,
    kernel: Callable[[np.ndarray], np.ndarray],
    support: int,
) -> np.ndarray:
    """Apply a separable FIR resampling kernel along both axes."""

    def _axis_weights(out_size: int, in_size: int) -> tuple[np.ndarray, np.ndarray]:
        coords = _source_coords(out_size, in_size)
        base = np.floor(coords).astype(np.intp)
        offsets = np.arange(-support + 1, support + 1, dtype=np.int64)
        idx = base[:, None] + offsets[None, :]
        w = kernel(coords[:, None] - idx)
        norm = w.sum(axis=1, keepdims=True)
        # Guard against degenerate all-zero rows (cannot happen for the
        # kernels above, but keeps the function total).
        norm[norm == 0] = 1.0
        w = w / norm
        idx = np.clip(idx, 0, in_size - 1)
        return idx, w

    image = _check_image(image)
    in_h, in_w = image.shape[:2]

    yi, yw = _axis_weights(out_h, in_h)
    xi, xw = _axis_weights(out_w, in_w)

    # Resample rows: (out_h, taps, W[, C]) * (out_h, taps, 1[, 1])
    gathered = image[yi]  # (out_h, taps, in_w[, C])
    wy = yw[:, :, None, None] if image.ndim == 3 else yw[:, :, None]
    rows = (gathered * wy).sum(axis=1)  # (out_h, in_w[, C])

    gathered = rows[:, xi]  # (out_h, out_w, taps[, C])
    wx = xw[None, :, :, None] if image.ndim == 3 else xw[None, :, :]
    return (gathered * wx).sum(axis=2)


def bicubic(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bicubic (Catmull-Rom) resampling."""
    return _separable_resample(image, out_h, out_w, _cubic_kernel, support=2)


def lanczos(image: np.ndarray, out_h: int, out_w: int, taps: int = 3) -> np.ndarray:
    """Lanczos resampling with ``taps`` lobes (default 3)."""
    return _separable_resample(
        image, out_h, out_w, lambda x: _lanczos_kernel(x, taps), support=taps
    )


FILTERS: Dict[str, Callable[[np.ndarray, int, int], np.ndarray]] = {
    "nearest": nearest,
    "bilinear": bilinear,
    "bicubic": bicubic,
    "lanczos": lanczos,
}


def resize(image: np.ndarray, out_h: int, out_w: int, method: str = "bilinear") -> np.ndarray:
    """Resize ``image`` to ``(out_h, out_w)`` with the named filter.

    Works for both up- and down-scaling. For downscaling by large factors the
    FIR filters are applied at the output rate (standard interpolation, i.e.
    aliasing is possible) — matching what GPU texture filtering does.
    """
    try:
        fn = FILTERS[method]
    except KeyError:
        raise ValueError(f"unknown filter {method!r}; choose from {sorted(FILTERS)}") from None
    if out_h < 1 or out_w < 1:
        raise ValueError(f"target size must be positive, got ({out_h}, {out_w})")
    return fn(image, out_h, out_w)


def upscale(image: np.ndarray, factor: int, method: str = "bilinear") -> np.ndarray:
    """Upscale ``image`` by an integer ``factor`` using the named filter."""
    if factor < 1:
        raise ValueError(f"upscale factor must be >= 1, got {factor}")
    image = _check_image(image)
    return resize(image, image.shape[0] * factor, image.shape[1] * factor, method)
