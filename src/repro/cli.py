"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``games``
    List the ten game workloads (Table I).
``devices``
    Show device profiles and their RoI window plans (Fig. 7).
``render``
    Render frames of a game to PPM files (color) + PGM (depth).
``detect``
    Run RoI detection on a game frame and print the box.
``stream``
    Run a short streaming session and print the design comparison.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["build_parser", "main"]


def _cmd_games(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .render.games import GAME_TABLE, build_game

    rows = []
    for game_id, title, genre in GAME_TABLE:
        game = build_game(game_id)
        rows.append((game_id, title, genre, game.scene.n_triangles()))
    print(format_table(["id", "title", "genre", "triangles"], rows))
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from .analysis.experiments import roi_sizing_table
    from .analysis.tables import format_table

    rows = [
        (r["device"], r["ppi"], r["min_side"], r["max_side"], round(r["roi_latency_ms"], 2))
        for r in roi_sizing_table()
    ]
    print(format_table(["device", "ppi", "min RoI", "max RoI", "RoI SR ms"], rows))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .render.games import build_game
    from .render.io import save_pgm, save_ppm

    game = build_game(args.game)
    out_dir = Path(args.out)
    for index in range(args.frames):
        frame = game.render_frame(index, args.width, args.height)
        color_path = save_ppm(frame.color, out_dir / f"{args.game}_{index:03d}.ppm")
        save_pgm(frame.depth, out_dir / f"{args.game}_{index:03d}_depth.pgm")
        print(f"wrote {color_path} (+ depth)")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from .core.detector import RoIDetector
    from .render.games import build_game

    frame = build_game(args.game).render_frame(args.frame, args.width, args.height)
    detection = RoIDetector(args.side).detect(frame.depth)
    box = detection.box
    print(
        f"{args.game} frame {args.frame}: RoI {box.width}x{box.height} at "
        f"({box.x}, {box.y}); foreground threshold "
        f"{detection.preprocess.foreground_threshold:.3f}; layer "
        f"{detection.preprocess.selected_layer}"
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .core.roi_sizing import plan_roi_window
    from .platform.device import get_device
    from .render.games import build_game
    from .sr.pretrained import default_sr_model
    from .sr.runner import SRRunner
    from .streaming.client import GameStreamSRClient, NemoClient
    from .streaming.frames import StreamGeometry
    from .streaming.pipelined import run_session_pipelined
    from .streaming.server import GameStreamServer
    from .streaming.session import run_session

    device = get_device(args.device)
    plan = plan_roi_window(device)
    runner = SRRunner(default_sr_model(profile=args.profile))
    geometry = StreamGeometry(eval_lr_height=64, eval_lr_width=112, lr_source="native")

    sr_backend = None
    dispatch = None
    if args.sr_backend is not None:
        from .sr.backends import build_backend

        sr_backend = build_backend(
            args.sr_backend,
            profile=args.profile,
            # The default arch reuses the session's already-built runner.
            runner=runner if args.sr_backend == "edsr" else None,
        )
    if args.dispatch:
        from .platform.calibration import REALTIME_DEADLINE_MS
        from .sr.backends import build_backend
        from .sr.dispatch import DifficultyDispatcher

        budget = args.dispatch_budget_ms
        if budget is None:
            # Half the 60 FPS frame budget: tight enough that the greedy
            # router actually spills easy tiles onto the small net / GPU.
            budget = REALTIME_DEADLINE_MS / 2
        dispatch = DifficultyDispatcher(
            [
                build_backend("edsr", profile=args.profile, runner=runner),
                build_backend("quicksrnet", profile=args.profile),
                build_backend("bilinear_gpu"),
            ],
            budget_ms=budget,
        )

    for label, client, roi in (
        ("gamestreamsr", GameStreamSRClient(device, runner, modeled_roi_side=plan.side),
         plan.side_for_frame(64)),
        ("nemo", NemoClient(device, runner), None),
    ):
        # The execution knobs apply only to the designs that carry them
        # (the session's apply_client_knobs validates combinations);
        # NEMO's codec-guided reconstruction has its own reuse story.
        knobs = dict(
            gop_reuse=args.gop_reuse and hasattr(client, "gop_reuse"),
            sr_backend=sr_backend if hasattr(client, "sr_backend") else None,
            dispatch=dispatch if hasattr(client, "dispatch") else None,
        )
        if args.scenario is not None:
            knobs["scenario"] = args.scenario
            knobs["link_deadline_ms"] = args.net_budget_ms
            knobs["skip_dropped"] = True
        if args.abr:
            from .streaming.abr import build_abr

            # ABR subsumes the static execution knobs: drop them and let
            # the ladder drive quality/GOP/RoI/backend per frame.
            knobs = {
                k: v
                for k, v in knobs.items()
                if k not in ("gop_reuse", "sr_backend", "dispatch")
            }
            knobs["abr"] = build_abr(
                plan.side,
                plan.min_side,
                720,
                runner=runner if hasattr(client, "set_sr_backend") else None,
                profile=args.profile,
                net_budget_ms=args.net_budget_ms,
            )
        server = GameStreamServer(
            build_game(args.game), geometry, roi_side=roi, gop_size=args.frames
        )
        if args.pipelined:
            result = run_session_pipelined(
                server, client, n_frames=args.frames,
                depth=args.depth, workers=args.workers, **knobs,
            )
        else:
            result = run_session(server, client, n_frames=args.frames, **knobs)
        extras = ""
        if args.scenario is not None:
            extras = (
                f" | conformance {result.conformance_rate():.2f}"
                f" | drops {result.drop_rate():.2f}"
            )
        print(
            f"{label:14s} ref {result.mean_upscale_ms(True):7.1f} ms | "
            f"non-ref {result.mean_upscale_ms(False):6.2f} ms | "
            f"MTP {result.mean_mtp().total_ms:6.1f} ms | "
            f"energy {result.gop_weighted_energy(60).total:6.1f} mJ/frame | "
            f"60 FPS: {result.realtime_conformant()}" + extras
        )
        if args.trace_json:
            from .observability import validate_session_trace

            out_dir = Path(args.trace_json)
            validate_session_trace(result.to_trace_dict())
            path = result.export_trace_json(out_dir / f"{args.game}_{label}_trace.json")
            print(f"  trace -> {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GameStreamSR reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("games", help="list the ten game workloads").set_defaults(fn=_cmd_games)
    sub.add_parser("devices", help="device profiles + RoI plans").set_defaults(fn=_cmd_devices)

    render = sub.add_parser("render", help="render frames to PPM/PGM files")
    render.add_argument("game", help="game id, e.g. G3")
    render.add_argument("--frames", type=int, default=1)
    render.add_argument("--width", type=int, default=224)
    render.add_argument("--height", type=int, default=128)
    render.add_argument("--out", default="renders")
    render.set_defaults(fn=_cmd_render)

    detect = sub.add_parser("detect", help="run RoI detection on a frame")
    detect.add_argument("game")
    detect.add_argument("--frame", type=int, default=0)
    detect.add_argument("--width", type=int, default=224)
    detect.add_argument("--height", type=int, default=128)
    detect.add_argument("--side", type=int, default=54)
    detect.set_defaults(fn=_cmd_detect)

    stream = sub.add_parser("stream", help="compare designs on a short session")
    stream.add_argument("game", nargs="?", default="G3")
    stream.add_argument("--device", default="samsung_tab_s8")
    stream.add_argument("--frames", type=int, default=8)
    stream.add_argument("--profile", default="tiny", help="SR model profile")
    stream.add_argument(
        "--pipelined",
        action="store_true",
        help="run via the software-pipelined executor (overlaps server and "
        "client stages across frames; byte-identical results)",
    )
    stream.add_argument(
        "--depth", type=int, default=2,
        help="pipeline depth: frames the server may run ahead (with --pipelined)",
    )
    stream.add_argument(
        "--workers", type=int, default=1,
        help="server-side processes; >1 adds a render-prefetch pool (with --pipelined)",
    )
    stream.add_argument(
        "--gop-reuse",
        action="store_true",
        help="warp-and-refresh SR reuse across the GOP for designs that "
        "support it (re-runs the DNN only on residual-dirty tiles)",
    )
    stream.add_argument(
        "--sr-backend",
        default=None,
        metavar="NAME",
        help="model-zoo SR backend for the RoI pass (edsr, edsr_int8, "
        "fsrcnn, quicksrnet, bicubic_cpu, bilinear_gpu)",
    )
    stream.add_argument(
        "--dispatch",
        action="store_true",
        help="difficulty-aware tile dispatch over edsr + quicksrnet + "
        "bilinear_gpu under a per-frame latency budget",
    )
    stream.add_argument(
        "--dispatch-budget-ms",
        type=float,
        default=None,
        help="per-engine latency budget for --dispatch "
        "(default: half the 60 FPS frame budget)",
    )
    stream.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="stream over a trace-driven time-varying link: wifi_stable, "
        "wifi_congested, lte_walk, lte_drive, 5g_mmwave, or "
        "synthetic:<seed> (enables skip-dropped transport)",
    )
    stream.add_argument(
        "--abr",
        action="store_true",
        help="close the bitrate control loop: co-adapt codec quality, GOP "
        "structure, RoI size, and SR backend to the observed link "
        "(subsumes --gop-reuse/--sr-backend/--dispatch)",
    )
    stream.add_argument(
        "--net-budget-ms",
        type=float,
        default=100.0,
        help="per-frame delivery budget for --scenario/--abr (frames past "
        "it are dropped; the ABR controller backs off approaching it)",
    )
    stream.add_argument(
        "--trace-json",
        default=None,
        metavar="DIR",
        help="export a schema-validated per-frame trace JSON per design into DIR",
    )
    stream.set_defaults(fn=_cmd_stream)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
