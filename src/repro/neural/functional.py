"""Neural-network functional ops: convolution, pixel shuffle, pooling.

conv2d uses an im2col/col2im formulation so both forward and backward run
as large matmuls — the only way a pure-numpy CNN is fast enough to train
the SR models in-repo.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = ["conv2d", "pixel_shuffle", "avg_pool2d", "im2col", "col2im"]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1
) -> np.ndarray:
    """Rearrange (N, C, H, W) into (N, C*kh*kw, L) patch columns.

    ``L = out_h * out_w`` for the given kernel/stride (no padding here —
    pad beforehand).
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride {stride}) larger than input ({h}x{w})"
        )
    # One contiguous slice-copy per kernel tap (kh*kw copies total) is far
    # cheaper than gathering a strided window view.
    cols = np.empty((n, c, kh, kw, out_h * out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patch = x[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            cols[:, :, i, j, :] = patch.reshape(n, c, out_h * out_w)
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
) -> np.ndarray:
    """Scatter-add (N, C*kh*kw, L) patch columns back into (N, C, H, W)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    return x


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation, matching torch.nn.functional.conv2d semantics.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if bias is not None:
        bias = as_tensor(bias)
    if x.ndim != 4:
        raise ValueError(f"conv2d input must be (N, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d weight must be (O, C, kh, kw), got {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {weight.shape[1]}"
        )
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")

    xp = x.pad2d(padding) if padding else x
    n, c, h, w = xp.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1

    cols = im2col(xp.data, kh, kw, stride)  # (N, C*kh*kw, L)
    w2 = weight.data.reshape(c_out, -1)  # (O, C*kh*kw)
    out_data = np.matmul(w2, cols)  # (N, O, L) via BLAS
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (xp, weight) if bias is None else (xp, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_cols = grad.reshape(n, c_out, out_h * out_w)  # (N, O, L)
        if weight.requires_grad:
            # dW = sum_n grad_cols @ cols^T, flattened over (N, L) for BLAS.
            g2 = np.ascontiguousarray(grad_cols.transpose(1, 0, 2)).reshape(c_out, -1)
            c2 = np.ascontiguousarray(cols.transpose(1, 0, 2)).reshape(cols.shape[1], -1)
            weight._accumulate((g2 @ c2.T).reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if xp.requires_grad:
            dcols = np.matmul(w2.T, grad_cols)
            xp._accumulate(col2im(dcols, (n, c, h, w), kh, kw, stride))

    return Tensor._make(out_data, parents, backward)


def pixel_shuffle(x: Tensor, factor: int) -> Tensor:
    """Depth-to-space rearrangement: (N, C*r^2, H, W) -> (N, C, H*r, W*r).

    The sub-pixel convolution upsampler used by EDSR-family SR models.
    """
    x = as_tensor(x)
    if x.ndim != 4:
        raise ValueError(f"pixel_shuffle input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    r = factor
    if r < 1:
        raise ValueError(f"factor must be >= 1, got {r}")
    if c % (r * r) != 0:
        raise ValueError(f"channels {c} not divisible by factor^2 = {r * r}")
    c_out = c // (r * r)

    out_data = (
        x.data.reshape(n, c_out, r, r, h, w)
        .transpose(0, 1, 4, 2, 5, 3)
        .reshape(n, c_out, h * r, w * r)
    )

    def backward(grad: np.ndarray) -> None:
        g = (
            grad.reshape(n, c_out, h, r, w, r)
            .transpose(0, 1, 3, 5, 2, 4)
            .reshape(n, c, h, w)
        )
        x._accumulate(g)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with a ``kernel`` x ``kernel`` window."""
    x = as_tensor(x)
    if x.ndim != 4:
        raise ValueError(f"avg_pool2d input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {h}x{w} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    out_data = x.data.reshape(n, c, oh, kernel, ow, kernel).mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        g = grad[:, :, :, None, :, None] / (kernel * kernel)
        g = np.broadcast_to(g, (n, c, oh, kernel, ow, kernel)).reshape(n, c, h, w)
        x._accumulate(g)

    return Tensor._make(out_data, (x,), backward)
