"""Neural-network functional ops: convolution, pixel shuffle, pooling.

conv2d uses an im2col/col2im formulation so both forward and backward run
as large matmuls — the only way a pure-numpy CNN is fast enough to train
the SR models in-repo. All ops follow the input dtype: under
``no_grad()`` activations are float32 (see the dtype policy in
:mod:`repro.neural.tensor`) and the float64 weights are cast once per
call so the BLAS matmul runs entirely at reduced precision.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = ["conv2d", "pixel_shuffle", "avg_pool2d", "im2col", "col2im"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _fill_cols(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oy0: int,
    oy1: int,
    buf: np.ndarray,
) -> None:
    """Fused zero-pad + im2col for output rows ``[oy0, oy1)``.

    Writes the columns for ``np.pad(x, pad)`` into ``buf`` (shaped
    (N, C, kh, kw, oy1-oy0, out_w)) without ever materializing the padded
    array: each kernel tap copies only the slice of ``x`` it can actually
    see and zero-fills the border strips of its destination directly.
    """
    n, c, h, w = x.shape
    ow = buf.shape[-1]
    for i in range(kh):
        # Output rows oy read input row (i - pad + oy*stride); keep the
        # range where that lands inside [0, h).
        y0 = max(oy0, _ceil_div(pad - i, stride))
        y1 = min(oy1 - 1, (h - 1 - i + pad) // stride)
        for j in range(kw):
            x0 = max(0, _ceil_div(pad - j, stride))
            x1 = min(ow - 1, (w - 1 - j + pad) // stride)
            dst = buf[:, :, i, j]
            if y0 > y1 or x0 > x1:
                dst[:] = 0
                continue
            d0, d1 = y0 - oy0, y1 - oy0
            if d0 > 0:
                dst[:, :, :d0] = 0
            if d1 < dst.shape[2] - 1:
                dst[:, :, d1 + 1 :] = 0
            if x0 > 0:
                dst[:, :, d0 : d1 + 1, :x0] = 0
            if x1 < ow - 1:
                dst[:, :, d0 : d1 + 1, x1 + 1 :] = 0
            r0 = i - pad + y0 * stride
            c0 = j - pad + x0 * stride
            dst[:, :, d0 : d1 + 1, x0 : x1 + 1] = x[
                :,
                :,
                r0 : r0 + (y1 - y0) * stride + 1 : stride,
                c0 : c0 + (x1 - x0) * stride + 1 : stride,
            ]


def _out_hw(shape, kh: int, kw: int, stride: int, pad: int) -> tuple[int, int]:
    h, w = shape[2], shape[3]
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride {stride}) larger than input "
            f"({h}x{w}, padding {pad})"
        )
    return out_h, out_w


def _im2col_padded(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Fused zero-pad + im2col over the full output.

    Returns ``(cols, out_h, out_w)`` with ``cols`` shaped (N, C*kh*kw, L).
    """
    n, c, h, w = x.shape
    out_h, out_w = _out_hw(x.shape, kh, kw, stride, pad)
    if kh == 1 and kw == 1 and stride == 1 and pad == 0:
        return x.reshape(n, c, h * w), out_h, out_w  # view, no copy
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    _fill_cols(x, kh, kw, stride, pad, 0, out_h, cols)
    return cols.reshape(n, c * kh * kw, out_h * out_w), out_h, out_w


#: im2col working-set target per GEMM call on the inference path. Chunks
#: of the column buffer this size stay cache-resident between the tap
#: copies and the GEMM that consumes them, instead of round-tripping a
#: buffer that for a 3x3 conv on an HR frame is hundreds of MB through
#: DRAM. ~L2-sized is the measured sweet spot (5x on that HR conv; sizes
#: from 256 KiB to 4 MiB are all within ~15% of it).
_CONV_CHUNK_BYTES = 1 << 20


def _conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Graph-free conv2d forward on raw arrays (the inference hot path).

    Cache-blocked: the column buffer is built and consumed a few output
    rows at a time so it never round-trips through DRAM.
    """
    n, c = x.shape[0], x.shape[1]
    c_out, _, kh, kw = weight.shape
    out_h, out_w = _out_hw(x.shape, kh, kw, stride, padding)
    w2 = weight.reshape(c_out, -1)
    if w2.dtype != x.dtype:
        w2 = w2.astype(x.dtype)  # float32 inference path
    out = np.empty((n, c_out, out_h, out_w), dtype=x.dtype)
    out3 = out.reshape(n, c_out, out_h * out_w)

    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        np.matmul(w2, x.reshape(n, c, -1), out=out3)
    else:
        k = c * kh * kw
        rows = max(1, _CONV_CHUNK_BYTES // (n * k * out_w * x.dtype.itemsize))
        if rows >= out_h:
            cols, _, _ = _im2col_padded(x, kh, kw, stride, padding)
            np.matmul(w2, cols, out=out3)
        else:
            buf = np.empty((n, c, kh, kw, rows, out_w), dtype=x.dtype)
            for oy0 in range(0, out_h, rows):
                oy1 = min(out_h, oy0 + rows)
                chunk = buf if oy1 - oy0 == rows else buf[:, :, :, :, : oy1 - oy0]
                _fill_cols(x, kh, kw, stride, padding, oy0, oy1, chunk)
                out[:, :, oy0:oy1] = np.matmul(
                    w2, chunk.reshape(n, k, -1)
                ).reshape(n, c_out, oy1 - oy0, out_w)

    if bias is not None:
        b = bias if bias.dtype == out.dtype else bias.astype(out.dtype)
        out += b.reshape(1, c_out, 1, 1)
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1
) -> np.ndarray:
    """Rearrange (N, C, H, W) into (N, C*kh*kw, L) patch columns.

    ``L = out_h * out_w`` for the given kernel/stride (no padding here —
    pad beforehand).
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride {stride}) larger than input ({h}x{w})"
        )
    if kh == 1 and kw == 1 and stride == 1:
        return x.reshape(n, c, h * w)  # pointwise conv: a view, no copy
    # One slice-copy per kernel tap (kh*kw copies total), written straight
    # into the 6-D view of the column buffer — a single strided pass per
    # tap. (Reshaping the strided patch first would materialize it and
    # double the memory traffic; this copy is what dominates conv2d's
    # runtime, not the GEMM.)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = x[
                :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
            ]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
) -> np.ndarray:
    """Scatter-add (N, C*kh*kw, L) patch columns back into (N, C, H, W)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    return x


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation, matching torch.nn.functional.conv2d semantics.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if bias is not None:
        bias = as_tensor(bias)
    if x.ndim != 4:
        raise ValueError(f"conv2d input must be (N, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d weight must be (O, C, kh, kw), got {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {weight.shape[1]}"
        )
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")

    needs_tape = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if not needs_tape:
        # Graph-free fast path: fused pad+im2col, no Tensor intermediates.
        return Tensor(
            _conv2d_forward(
                x.data, weight.data, None if bias is None else bias.data, stride, padding
            )
        )

    xp = x.pad2d(padding) if padding else x
    n, c, h, w = xp.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1

    cols = im2col(xp.data, kh, kw, stride)  # (N, C*kh*kw, L)
    w2 = weight.data.reshape(c_out, -1)  # (O, C*kh*kw)
    if w2.dtype != cols.dtype:
        w2 = w2.astype(cols.dtype)  # float32 inference path
    out_data = np.matmul(w2, cols)  # (N, O, L) via BLAS
    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        b = bias.data
        if b.dtype != out_data.dtype:
            b = b.astype(out_data.dtype)
        out_data += b.reshape(1, c_out, 1, 1)

    parents = (xp, weight) if bias is None else (xp, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_cols = grad.reshape(n, c_out, out_h * out_w)  # (N, O, L)
        if weight.requires_grad:
            # dW = sum_n grad_cols @ cols^T, flattened over (N, L) for BLAS.
            g2 = np.ascontiguousarray(grad_cols.transpose(1, 0, 2)).reshape(c_out, -1)
            c2 = np.ascontiguousarray(cols.transpose(1, 0, 2)).reshape(cols.shape[1], -1)
            weight._accumulate((g2 @ c2.T).reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if xp.requires_grad:
            dcols = np.matmul(w2.T, grad_cols)
            xp._accumulate(col2im(dcols, (n, c, h, w), kh, kw, stride))

    return Tensor._make(out_data, parents, backward)


def pixel_shuffle(x: Tensor, factor: int) -> Tensor:
    """Depth-to-space rearrangement: (N, C*r^2, H, W) -> (N, C, H*r, W*r).

    The sub-pixel convolution upsampler used by EDSR-family SR models.
    """
    x = as_tensor(x)
    if x.ndim != 4:
        raise ValueError(f"pixel_shuffle input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    r = factor
    if r < 1:
        raise ValueError(f"factor must be >= 1, got {r}")
    if c % (r * r) != 0:
        raise ValueError(f"channels {c} not divisible by factor^2 = {r * r}")
    c_out = c // (r * r)

    out_data = (
        x.data.reshape(n, c_out, r, r, h, w)
        .transpose(0, 1, 4, 2, 5, 3)
        .reshape(n, c_out, h * r, w * r)
    )
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        g = (
            grad.reshape(n, c_out, h, r, w, r)
            .transpose(0, 1, 3, 5, 2, 4)
            .reshape(n, c, h, w)
        )
        x._accumulate(g)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with a ``kernel`` x ``kernel`` window."""
    x = as_tensor(x)
    if x.ndim != 4:
        raise ValueError(f"avg_pool2d input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {h}x{w} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    out_data = x.data.reshape(n, c, oh, kernel, ow, kernel).mean(axis=(3, 5))
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        g = grad[:, :, :, None, :, None] / (kernel * kernel)
        g = np.broadcast_to(g, (n, c, oh, kernel, ow, kernel)).reshape(n, c, h, w)
        x._accumulate(g)

    return Tensor._make(out_data, (x,), backward)
