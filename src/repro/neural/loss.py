"""Training losses for the SR models (EDSR trains with L1)."""

from __future__ import annotations

from .tensor import Tensor, as_tensor

__all__ = ["mse_loss", "l1_loss", "charbonnier_loss"]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    return (as_tensor(prediction) - as_tensor(target)).abs().mean()


def charbonnier_loss(prediction: Tensor, target: Tensor, eps: float = 1e-3) -> Tensor:
    """Smooth L1 variant common in SR training."""
    diff = as_tensor(prediction) - as_tensor(target)
    return ((diff * diff + eps * eps) ** 0.5).mean()
