"""Module/layer abstractions over the autograd tensors.

A :class:`Module` tracks parameters and sub-modules by attribute assignment
(the familiar torch.nn idiom) and supports flat ``state_dict`` round-trips
for serialization.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from . import functional as F
from .init import kaiming_uniform, zeros
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "Module",
    "Conv2d",
    "ReLU",
    "PReLU",
    "Sequential",
    "ResidualBlock",
    "PixelShuffle",
    "Upsampler",
    "ScaledAdd",
]


class Module:
    """Base class: parameter registry, train/eval mode, state dicts."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- attribute-based registration ----------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes ----------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # -- state dict -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)  # reprolint: disable=dtype-discipline -- f64 training/state policy
            if value.shape != param.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != {param.shape}"
                )
            param.data = value.copy()

    # -- call protocol ----------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Conv2d(Module):
    """3x3-style convolution layer with He-initialized weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1 or kernel_size < 1:
            raise ValueError("channels and kernel size must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        # "same" padding by default for odd kernels.
        self.padding = kernel_size // 2 if padding is None else padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Tensor(kaiming_uniform(shape, rng), requires_grad=True)
        self.bias = Tensor(zeros((out_channels,)), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class PReLU(Module):
    """Parametric ReLU with a single shared negative slope."""

    def __init__(self, init: float = 0.25) -> None:
        super().__init__()
        self.alpha = Tensor(np.array([init]), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x.relu() - self.alpha * (-x).relu()


class Sequential(Module):
    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for idx, module in enumerate(modules):
            name = str(idx)
            self._modules[name] = module
            object.__setattr__(self, f"m{idx}", module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._modules[name] for name in self._order)


class ScaledAdd(Module):
    """Residual-scaling add used by EDSR (``x + scale * f(x)``)."""

    def __init__(self, body: Module, scale: float = 1.0) -> None:
        super().__init__()
        self.body = body
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return x + self.body(x) * self.scale


class ResidualBlock(Module):
    """EDSR residual block: conv-ReLU-conv with scaled skip, no batch norm."""

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        res_scale: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(channels, channels, kernel_size, rng=rng)
        self.conv2 = Conv2d(channels, channels, kernel_size, rng=rng)
        self.res_scale = res_scale

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Inference: the conv outputs are block-private, so the ReLU,
            # residual scale, and skip-add can all run in place — no
            # multi-MB temporaries per block.
            y = self.conv1(x)
            np.maximum(y.data, 0.0, out=y.data)
            y = self.conv2(y)
            y.data *= self.res_scale
            y.data += x.data
            return y
        out = self.conv2(self.conv1(x).relu())
        return x + out * self.res_scale


class PixelShuffle(Module):
    def __init__(self, factor: int) -> None:
        super().__init__()
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        return F.pixel_shuffle(x, self.factor)


class Upsampler(Module):
    """Sub-pixel convolution upsampler: conv to r^2*C channels + shuffle.

    Supports power-of-two factors and factor 3, like the EDSR reference code.
    """

    def __init__(
        self,
        channels: int,
        factor: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        stages: List[Module] = []
        remaining = factor
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        while remaining > 1:
            if remaining % 2 == 0:
                step = 2
            elif remaining % 3 == 0:
                step = 3
            else:
                raise ValueError(f"unsupported upscale factor {factor}")
            stages.append(Conv2d(channels, channels * step * step, 3, rng=rng))
            stages.append(PixelShuffle(step))
            remaining //= step
        self.stages = Sequential(*stages)

    def forward(self, x: Tensor) -> Tensor:
        return self.stages(x)
