"""First-order optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer holding the parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(
        self, parameters: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            vel *= self.momentum
            vel += param.grad
            param.data -= self.lr * vel


class Adam(Optimizer):
    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1 - b1**self._t
        bias2 = 1 - b2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= b1
            m += (1 - b1) * param.grad
            v *= b2
            v += (1 - b2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip the global L2 gradient norm in place; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total
