"""Super-resolution network architectures.

:class:`EDSR` follows Lim et al. 2017 (the model the paper deploys on the
mobile NPU, Sec. V-A: 16 residual blocks, 64 channels, x2): a head conv,
residual body with a global skip, sub-pixel upsampler, and tail conv —
no batch norm. One deliberate addition: a **bilinear global skip** from the
interpolated input to the output, so the network learns the residual *over
bilinear interpolation*. An untrained model therefore reproduces bilinear
quality exactly and training can only improve on it — which makes the
quality comparisons in the evaluation robust to the small training budgets
feasible in pure numpy.

:class:`FSRCNNLite` is a smaller alternative used in ablations and to model
the "efficient mobile SR architectures" related-work family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Conv2d, Module, PReLU, ResidualBlock, Sequential, Upsampler
from .tensor import Tensor, is_grad_enabled

__all__ = ["EDSR", "FSRCNNLite", "PAPER_EDSR_BLOCKS", "PAPER_EDSR_CHANNELS"]

#: EDSR geometry used in the paper's evaluation (Sec. V-A).
PAPER_EDSR_BLOCKS = 16
PAPER_EDSR_CHANNELS = 64


def _bilinear_skip(x_data: np.ndarray, factor: int) -> np.ndarray:
    """Bilinear-upscale an (N, C, H, W) batch by ``factor`` (no gradient).

    Vectorised over the whole batch and computed in the input dtype
    (float32 on the inference path), matching
    :func:`repro.sr.interpolate.bilinear` — same "align corners = False"
    coordinates and the same x-then-y lerp order, so float64 results are
    bit-identical to the image-space filter.
    """
    n, c, h, w = x_data.shape
    dt = x_data.dtype

    def _axis(out_size: int, in_size: int):
        # Same expression as interpolate._source_coords (multiply by the
        # reciprocal scale, not divide) so coords match to the last ulp.
        scale = in_size / out_size
        coords = (np.arange(out_size, dtype=np.float64) + 0.5) * scale - 0.5
        lo = np.clip(np.floor(coords), 0, in_size - 1).astype(np.intp)
        hi = np.minimum(lo + 1, in_size - 1)
        frac = np.clip(coords - lo, 0.0, 1.0).astype(dt)
        return lo, hi, frac

    y0, y1, wy = _axis(h * factor, h)
    x0, x1, wx = _axis(w * factor, w)
    cols = x_data[..., x0] * (1 - wx) + x_data[..., x1] * wx
    wy = wy[:, None]
    return cols[:, :, y0] * (1 - wy) + cols[:, :, y1] * wy


class EDSR(Module):
    """Enhanced Deep residual Super-Resolution network.

    Parameters mirror the reference implementation:

    - ``scale``: integer upscale factor (the paper uses 2).
    - ``n_resblocks`` / ``n_feats``: body depth and width.
    - ``res_scale``: residual scaling inside each block.
    - ``channels``: image channels (3 for RGB frames).
    """

    def __init__(
        self,
        scale: int = 2,
        n_resblocks: int = PAPER_EDSR_BLOCKS,
        n_feats: int = PAPER_EDSR_CHANNELS,
        res_scale: float = 0.1,
        channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        if n_resblocks < 1 or n_feats < 1:
            raise ValueError("n_resblocks and n_feats must be positive")
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.channels = channels
        self.head = Conv2d(channels, n_feats, 3, rng=rng)
        self.body = Sequential(
            *[ResidualBlock(n_feats, res_scale=res_scale, rng=rng) for _ in range(n_resblocks)]
        )
        self.body_tail = Conv2d(n_feats, n_feats, 3, rng=rng)
        self.upsampler = Upsampler(n_feats, scale, rng=rng)
        self.tail = Conv2d(n_feats, channels, 3, rng=rng)
        # Start the tail near zero so the initial output is ~pure bilinear.
        self.tail.weight.data *= 0.01

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) input, got {x.shape}")
        if x.shape[1] != self.channels:
            raise ValueError(
                f"expected {self.channels} channels, got {x.shape[1]}"
            )
        feats = self.head(x)
        if not is_grad_enabled():
            # Inference: fold the global feature skip and the bilinear skip
            # into the freshly produced activations in place.
            body_out = self.body_tail(self.body(feats))
            body_out.data += feats.data
            out = self.tail(self.upsampler(body_out))
            out.data += _bilinear_skip(x.data, self.scale)
            return out
        body_out = self.body_tail(self.body(feats)) + feats  # global feature skip
        residual = self.tail(self.upsampler(body_out))
        skip = Tensor(_bilinear_skip(x.data, self.scale))
        return residual + skip

    def describe(self) -> str:
        return (
            f"EDSR(x{self.scale}, {len(self.body)} blocks, "
            f"{self.head.out_channels} feats, {self.num_parameters():,} params)"
        )


class FSRCNNLite(Module):
    """A compact FSRCNN-style SR net: shrink -> map -> expand -> upsample."""

    def __init__(
        self,
        scale: int = 2,
        feats: int = 24,
        shrink: int = 12,
        n_maps: int = 3,
        channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.channels = channels
        self.extract = Conv2d(channels, feats, 5, rng=rng)
        self.act0 = PReLU()
        self.shrink = Conv2d(feats, shrink, 1, rng=rng)
        self.act1 = PReLU()
        self.mapping = Sequential(
            *[Conv2d(shrink, shrink, 3, rng=rng) for _ in range(n_maps)]
        )
        self.act2 = PReLU()
        self.expand = Conv2d(shrink, feats, 1, rng=rng)
        self.act3 = PReLU()
        self.upsampler = Upsampler(feats, scale, rng=rng)
        self.tail = Conv2d(feats, channels, 3, rng=rng)
        self.tail.weight.data *= 0.01

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) input, got {x.shape}")
        y = self.act0(self.extract(x))
        y = self.act1(self.shrink(y))
        y = self.act2(self.mapping(y))
        y = self.act3(self.expand(y))
        residual = self.tail(self.upsampler(y))
        skip = Tensor(_bilinear_skip(x.data, self.scale))
        return residual + skip
