"""Super-resolution network architectures.

:class:`EDSR` follows Lim et al. 2017 (the model the paper deploys on the
mobile NPU, Sec. V-A: 16 residual blocks, 64 channels, x2): a head conv,
residual body with a global skip, sub-pixel upsampler, and tail conv —
no batch norm. One deliberate addition: a **bilinear global skip** from the
interpolated input to the output, so the network learns the residual *over
bilinear interpolation*. An untrained model therefore reproduces bilinear
quality exactly and training can only improve on it — which makes the
quality comparisons in the evaluation robust to the small training budgets
feasible in pure numpy.

:class:`FSRCNNLite` is a smaller alternative used in ablations and to model
the "efficient mobile SR architectures" related-work family.

Two model-zoo additions back the heterogeneous-dispatch work
(:mod:`repro.sr.backends`):

* :class:`QuickSRNet` — a QuickSRNet-style *plain* conv net (Berger et
  al. 2023): no skip connections at inference time; instead every body
  conv is **identity-initialized** (a centre delta kernel added onto the
  scaled random init, the "residual repeat" trick) and the tail is
  initialized as a nearest-neighbour channel repeat, so an untrained net
  approximates nearest-neighbour upsampling and training learns the
  residual on top — while the deployed graph stays a skip-free conv
  stack, the shape mobile NPU compilers fuse best.
* :class:`QuantizedEDSR` — a simulated-int8 EDSR à la NAWQ-SR:
  :meth:`~QuantizedEDSR.quantize` fake-quantizes every conv weight
  per-output-channel to ``weight_bits`` and dequantizes in place, so the
  float forward path executes exactly the arithmetic an int8 NPU kernel
  would round through (activations stay float — the hybrid-precision
  regime).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .layers import (
    Conv2d,
    Module,
    PixelShuffle,
    PReLU,
    ResidualBlock,
    Sequential,
    Upsampler,
)
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "EDSR",
    "FSRCNNLite",
    "QuickSRNet",
    "QuantizedEDSR",
    "conv_modules",
    "quantize_conv_per_channel",
    "PAPER_EDSR_BLOCKS",
    "PAPER_EDSR_CHANNELS",
]

#: EDSR geometry used in the paper's evaluation (Sec. V-A).
PAPER_EDSR_BLOCKS = 16
PAPER_EDSR_CHANNELS = 64


def _bilinear_skip(x_data: np.ndarray, factor: int) -> np.ndarray:
    """Bilinear-upscale an (N, C, H, W) batch by ``factor`` (no gradient).

    Vectorised over the whole batch and computed in the input dtype
    (float32 on the inference path), matching
    :func:`repro.sr.interpolate.bilinear` — same "align corners = False"
    coordinates and the same x-then-y lerp order, so float64 results are
    bit-identical to the image-space filter.
    """
    n, c, h, w = x_data.shape
    dt = x_data.dtype

    def _axis(out_size: int, in_size: int):
        # Same expression as interpolate._source_coords (multiply by the
        # reciprocal scale, not divide) so coords match to the last ulp.
        scale = in_size / out_size
        coords = (np.arange(out_size, dtype=np.float64) + 0.5) * scale - 0.5
        lo = np.clip(np.floor(coords), 0, in_size - 1).astype(np.intp)
        hi = np.minimum(lo + 1, in_size - 1)
        frac = np.clip(coords - lo, 0.0, 1.0).astype(dt)
        return lo, hi, frac

    y0, y1, wy = _axis(h * factor, h)
    x0, x1, wx = _axis(w * factor, w)
    cols = x_data[..., x0] * (1 - wx) + x_data[..., x1] * wx
    wy = wy[:, None]
    return cols[:, :, y0] * (1 - wy) + cols[:, :, y1] * wy


class EDSR(Module):
    """Enhanced Deep residual Super-Resolution network.

    Parameters mirror the reference implementation:

    - ``scale``: integer upscale factor (the paper uses 2).
    - ``n_resblocks`` / ``n_feats``: body depth and width.
    - ``res_scale``: residual scaling inside each block.
    - ``channels``: image channels (3 for RGB frames).
    """

    def __init__(
        self,
        scale: int = 2,
        n_resblocks: int = PAPER_EDSR_BLOCKS,
        n_feats: int = PAPER_EDSR_CHANNELS,
        res_scale: float = 0.1,
        channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        if n_resblocks < 1 or n_feats < 1:
            raise ValueError("n_resblocks and n_feats must be positive")
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.channels = channels
        self.head = Conv2d(channels, n_feats, 3, rng=rng)
        self.body = Sequential(
            *[ResidualBlock(n_feats, res_scale=res_scale, rng=rng) for _ in range(n_resblocks)]
        )
        self.body_tail = Conv2d(n_feats, n_feats, 3, rng=rng)
        self.upsampler = Upsampler(n_feats, scale, rng=rng)
        self.tail = Conv2d(n_feats, channels, 3, rng=rng)
        # Start the tail near zero so the initial output is ~pure bilinear.
        self.tail.weight.data *= 0.01

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) input, got {x.shape}")
        if x.shape[1] != self.channels:
            raise ValueError(
                f"expected {self.channels} channels, got {x.shape[1]}"
            )
        feats = self.head(x)
        if not is_grad_enabled():
            # Inference: fold the global feature skip and the bilinear skip
            # into the freshly produced activations in place.
            body_out = self.body_tail(self.body(feats))
            body_out.data += feats.data
            out = self.tail(self.upsampler(body_out))
            out.data += _bilinear_skip(x.data, self.scale)
            return out
        body_out = self.body_tail(self.body(feats)) + feats  # global feature skip
        residual = self.tail(self.upsampler(body_out))
        skip = Tensor(_bilinear_skip(x.data, self.scale))
        return residual + skip

    def describe(self) -> str:
        return (
            f"EDSR(x{self.scale}, {len(self.body)} blocks, "
            f"{self.head.out_channels} feats, {self.num_parameters():,} params)"
        )


class FSRCNNLite(Module):
    """A compact FSRCNN-style SR net: shrink -> map -> expand -> upsample."""

    def __init__(
        self,
        scale: int = 2,
        feats: int = 24,
        shrink: int = 12,
        n_maps: int = 3,
        channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.channels = channels
        self.extract = Conv2d(channels, feats, 5, rng=rng)
        self.act0 = PReLU()
        self.shrink = Conv2d(feats, shrink, 1, rng=rng)
        self.act1 = PReLU()
        self.mapping = Sequential(
            *[Conv2d(shrink, shrink, 3, rng=rng) for _ in range(n_maps)]
        )
        self.act2 = PReLU()
        self.expand = Conv2d(shrink, feats, 1, rng=rng)
        self.act3 = PReLU()
        self.upsampler = Upsampler(feats, scale, rng=rng)
        self.tail = Conv2d(feats, channels, 3, rng=rng)
        self.tail.weight.data *= 0.01

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) input, got {x.shape}")
        y = self.act0(self.extract(x))
        y = self.act1(self.shrink(y))
        y = self.act2(self.mapping(y))
        y = self.act3(self.expand(y))
        residual = self.tail(self.upsampler(y))
        skip = Tensor(_bilinear_skip(x.data, self.scale))
        return residual + skip


def conv_modules(module: Module) -> Iterator[Conv2d]:
    """Yield every :class:`Conv2d` in ``module``'s tree, depth-first.

    Used by the quantization helpers below so they operate uniformly on
    any architecture (EDSR's convs live inside ``ResidualBlock`` and
    ``Upsampler`` submodules).
    """
    if isinstance(module, Conv2d):
        yield module
    for child in module._modules.values():
        yield from conv_modules(child)


def quantize_conv_per_channel(conv: Conv2d, bits: int = 8) -> np.ndarray:
    """Fake-quantize ``conv``'s weight per output channel, in place.

    Symmetric quantization: each output channel ``o`` gets its own scale
    ``max|w[o]| / qmax`` (per-channel granularity is what keeps int8 SR
    nets near float quality — NAWQ-SR Sec. 3), the weights are rounded
    onto the ``bits``-bit signed integer grid and immediately
    dequantized, so the stored float weights land exactly on
    representable int8 values. Returns the per-channel scales.
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    w = conv.weight.data
    qmax = float(2 ** (bits - 1) - 1)
    absmax = np.abs(w.reshape(w.shape[0], -1)).max(axis=1)
    # All-zero channels (e.g. a zero-initialized tail) quantize to zero
    # under any scale; use 1.0 to avoid dividing by zero.
    scales = np.where(absmax > 0.0, absmax / qmax, 1.0)
    per_out = scales.reshape(-1, 1, 1, 1)
    quantized = np.clip(np.rint(w / per_out), -qmax, qmax) * per_out
    conv.weight.data = quantized.astype(w.dtype, copy=False)
    return scales


class QuickSRNet(Module):
    """QuickSRNet-style plain conv SR net (Berger et al. 2023).

    A skip-free stack — head conv, ``n_convs`` body convs with PReLU,
    tail conv to ``channels * scale**2``, pixel shuffle — the topology
    mobile NPU compilers fuse into a single fully-pipelined graph.
    Residual learning is moved from the architecture into the
    *initialization*: every conv starts as (scaled-down random noise +
    an identity delta kernel), and the tail starts as a
    nearest-neighbour channel repeat, so an untrained net approximates
    nearest-neighbour upsampling and training learns the correction.
    Activations stay near the [0, 1] pixel range where PReLU is the
    identity, so the init survives the nonlinearities.
    """

    #: Scale applied to the random init before the identity delta is
    #: added — keeps symmetry-breaking noise for training without
    #: drowning the identity path.
    NOISE_SCALE = 0.05

    def __init__(
        self,
        scale: int = 2,
        n_convs: int = 4,
        feats: int = 32,
        channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        if n_convs < 1 or feats < channels:
            raise ValueError(
                "n_convs must be positive and feats must be >= channels"
            )
        rng = np.random.default_rng(seed)
        self.scale = scale
        self.channels = channels
        self.head = Conv2d(channels, feats, 3, rng=rng)
        body = []
        for _ in range(n_convs):
            body.append(Conv2d(feats, feats, 3, rng=rng))
            body.append(PReLU())
        self.act_head = PReLU()
        self.body = Sequential(*body)
        self.tail = Conv2d(feats, channels * scale * scale, 3, rng=rng)
        self.shuffle = PixelShuffle(scale)
        self._identity_init()

    def _identity_init(self) -> None:
        k = self.head.weight.data.shape[-1]
        centre = k // 2
        feats = self.head.out_channels
        # Head: feature channel o carries image channel o % channels.
        self.head.weight.data *= self.NOISE_SCALE
        for o in range(feats):
            self.head.weight.data[o, o % self.channels, centre, centre] += 1.0
        # Body: each conv starts as a per-channel identity ("residual
        # repeat" — the block behaves like x + eps*f(x) without a skip).
        for conv in conv_modules(self.body):
            conv.weight.data *= self.NOISE_SCALE
            for o in range(feats):
                conv.weight.data[o, o, centre, centre] += 1.0
        # Tail: output channel o = c*r^2 + dy*r + dx reads feature
        # channel c, so after the pixel shuffle every HR pixel in a
        # block repeats the LR pixel: nearest-neighbour upsampling.
        r2 = self.scale * self.scale
        self.tail.weight.data *= self.NOISE_SCALE * 0.01
        for o in range(self.channels * r2):
            self.tail.weight.data[o, o // r2, centre, centre] += 1.0

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) input, got {x.shape}")
        if x.shape[1] != self.channels:
            raise ValueError(
                f"expected {self.channels} channels, got {x.shape[1]}"
            )
        y = self.act_head(self.head(x))
        y = self.body(y)
        return self.shuffle(self.tail(y))

    def describe(self) -> str:
        n_convs = len(self.body) // 2
        return (
            f"QuickSRNet(x{self.scale}, {n_convs} convs, "
            f"{self.head.out_channels} feats, {self.num_parameters():,} params)"
        )


class QuantizedEDSR(EDSR):
    """EDSR with simulated-int8 per-channel weight quantization.

    State-dict compatible with :class:`EDSR` (no extra parameters), so
    the zoo loads trained float EDSR weights and calls
    :meth:`quantize` — the NAWQ-SR hybrid-precision regime where
    weights ride the int8 datapath and activations stay float.
    """

    def __init__(self, *args, weight_bits: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.weight_bits = weight_bits
        self.quantized = False

    def quantize(self) -> "QuantizedEDSR":
        """Fake-quantize every conv weight in place (idempotent)."""
        for conv in conv_modules(self):
            quantize_conv_per_channel(conv, self.weight_bits)
        self.quantized = True
        return self

    def load_state_dict(self, state) -> None:
        super().load_state_dict(state)
        self.quantized = False

    def describe(self) -> str:
        state = "int8" if self.quantized else "float"
        return (
            f"QuantizedEDSR(x{self.scale}, {len(self.body)} blocks, "
            f"w{self.weight_bits} {state}, {self.num_parameters():,} params)"
        )
