"""Deterministic weight initializers (He/Xavier) for the neural substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # conv (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"cannot infer fan for shape {shape}")


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-uniform init sized for ReLU nets."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
