"""Process-level allocator tuning for large-array workloads.

The SR forward pass churns through multi-megabyte temporaries (im2col
buffers, GEMM outputs, padded activations). With glibc's default malloc
thresholds every one of those comes from a fresh ``mmap`` and is returned
to the kernel on free, so each conv pays first-touch page faults on tens
of megabytes — on a single core that costs more than the GEMM itself
(measured ~40% of the whole EDSR forward on the bench machine).

:func:`tune_malloc_for_large_arrays` raises ``M_MMAP_THRESHOLD`` and
``M_TRIM_THRESHOLD`` so big blocks are served from the heap and reused
across ops. It is called once from :mod:`repro.neural` at import; set
``REPRO_NO_MALLOC_TUNING=1`` to keep the platform defaults (or call
:func:`reset_malloc_defaults`, which the hotpath bench uses to time the
untuned baseline faithfully).

No-ops gracefully on non-glibc platforms.
"""

from __future__ import annotations

import ctypes
import os

__all__ = ["tune_malloc_for_large_arrays", "reset_malloc_defaults"]

# glibc mallopt parameter codes (malloc.h).
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

#: glibc defaults (both 128 KiB, dynamic adjustment enabled).
_GLIBC_DEFAULT_THRESHOLD = 128 * 1024

_TUNED = False


def _mallopt(param: int, value: int) -> bool:
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        return bool(libc.mallopt(param, value))
    except (OSError, AttributeError):
        return False


def tune_malloc_for_large_arrays(threshold: int = 1 << 30) -> bool:
    """Keep blocks below ``threshold`` on the heap instead of mmap.

    Returns True if the tuning took effect. Idempotent; honours
    ``REPRO_NO_MALLOC_TUNING``.
    """
    global _TUNED
    if os.environ.get("REPRO_NO_MALLOC_TUNING", "").strip() in ("1", "true", "yes"):
        return False
    ok = _mallopt(_M_MMAP_THRESHOLD, threshold) and _mallopt(
        _M_TRIM_THRESHOLD, threshold
    )
    _TUNED = _TUNED or ok
    return ok


def reset_malloc_defaults() -> bool:
    """Restore glibc's default thresholds (used to bench the cold path)."""
    global _TUNED
    ok = _mallopt(_M_MMAP_THRESHOLD, _GLIBC_DEFAULT_THRESHOLD) and _mallopt(
        _M_TRIM_THRESHOLD, _GLIBC_DEFAULT_THRESHOLD
    )
    if ok:
        _TUNED = False
    return ok
