"""Reverse-mode automatic differentiation over numpy arrays.

This is the foundation of :mod:`repro.neural`, the from-scratch substitute
for the PyTorch/TensorFlow-Lite stack the paper runs its EDSR model on
(Sec. V-A). A :class:`Tensor` wraps a float ndarray and records the ops
applied to it; :meth:`Tensor.backward` walks the tape in reverse
topological order accumulating gradients.

Only the operations the SR models need are implemented, but they are
implemented completely (full broadcasting support with gradient
"unbroadcasting", slicing, reductions, matmul over batched operands).

Dtype policy
------------
Training always runs in float64 (gradient checks in the test suite rely
on it). Inference — anything executed under :class:`no_grad` — runs at a
configurable reduced precision (float32 by default, see
:func:`set_inference_dtype`), halving the memory bandwidth of the big
im2col matmuls that dominate SR forward passes. Ops executed while the
tape is disabled also skip parent tracking and never allocate their
backward closures, so inference builds no graph at all.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

__all__ = [
    "Tensor",
    "ArrayLike",
    "as_tensor",
    "concat",
    "no_grad",
    "is_grad_enabled",
    "set_inference_dtype",
    "get_inference_dtype",
    "active_dtype",
]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True

#: Dtype used while the tape is recording (training / gradient checks).
_TRAIN_DTYPE = np.dtype(np.float64)
#: Dtype adopted by tensors created while grad is disabled.
_INFERENCE_DTYPE = np.dtype(np.float32)

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_inference_dtype(dtype) -> np.dtype:
    """Set the dtype used for tensors created under :class:`no_grad`.

    Returns the previous inference dtype. Only float32 and float64 are
    supported.
    """
    global _INFERENCE_DTYPE
    new = np.dtype(dtype)
    if new not in _FLOAT_DTYPES:
        raise ValueError(f"inference dtype must be float32 or float64, got {new}")
    previous = _INFERENCE_DTYPE
    _INFERENCE_DTYPE = new
    return previous


def get_inference_dtype() -> np.dtype:
    """The dtype tensors adopt while grad is disabled."""
    return _INFERENCE_DTYPE


def active_dtype() -> np.dtype:
    """The dtype newly created tensors adopt right now."""
    return _TRAIN_DTYPE if _GRAD_ENABLED else _INFERENCE_DTYPE


class no_grad:
    """Context manager disabling tape recording (used for inference).

    Optionally overrides the inference dtype for the duration of the
    block: ``with no_grad(dtype=np.float64): ...`` runs a full-precision
    inference (used by the numerical-equivalence tests and benches).
    """

    def __init__(self, dtype=None) -> None:
        self._dtype = None if dtype is None else np.dtype(dtype)

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        self._prev_dtype: Optional[np.dtype] = None
        if self._dtype is not None:
            self._prev_dtype = set_inference_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        if self._prev_dtype is not None:
            set_inference_dtype(self._prev_dtype)


def is_grad_enabled() -> bool:
    """Whether new ops are currently recorded on the autograd tape."""
    return _GRAD_ENABLED


def _tape_off(*tensors: "Tensor") -> bool:
    """True when the op needs no graph: grad disabled or no grad inputs."""
    if not _GRAD_ENABLED:
        return True
    for t in tensors:
        if t.requires_grad:
            return False
    return True


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make ndarray defer to our __radd__ etc.

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype not in _FLOAT_DTYPES:
            arr = arr.astype(_TRAIN_DTYPE)
        if not _GRAD_ENABLED and arr.dtype != _INFERENCE_DTYPE:
            arr = arr.astype(_INFERENCE_DTYPE)
        self.data = arr
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if _GRAD_ENABLED else ()
        self._backward = _backward if _GRAD_ENABLED else None
        self.name = name

    # ------------------------------------------------------------------
    # basic properties

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """A grad-free copy of this tensor cast to ``dtype``."""
        return Tensor(self.data.astype(np.dtype(dtype)))

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    # ------------------------------------------------------------------
    # graph construction helpers

    def _needs_tape(self, *others: "Tensor") -> bool:
        return _GRAD_ENABLED and (
            self.requires_grad or any(o.requires_grad for o in others)
        )

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not needs:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)  # reprolint: disable=dtype-discipline -- f64 training/state policy
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # arithmetic
    #
    # Every op follows the same shape: compute the forward result, and if
    # the tape is off return a bare Tensor immediately — the backward
    # closure (and any intermediate it would capture) is never created.

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if _tape_off(self, other):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if _tape_off(self, other):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        if _tape_off(self, other):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        if _tape_off(self, other):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # dot product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            ga = grad @ np.swapaxes(b, -1, -2) if b.ndim >= 2 else np.outer(grad, b)
            gb = np.swapaxes(a, -1, -2) @ grad if a.ndim >= 2 else np.outer(a, grad)
            self._accumulate(_unbroadcast(ga, self.shape))
            other._accumulate(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities

    def relu(self) -> "Tensor":
        if _tape_off(self):
            return Tensor(np.maximum(self.data, 0))
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if _tape_off(self):
            return Tensor(out_data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if _tape_off(self):
            return Tensor(out_data)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions and reshapes

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if _tape_off(self):
            return Tensor(out_data)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        if _tape_off(self):
            return Tensor(out_data)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if _tape_off(self):
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes by ``pad`` on each side."""
        if pad < 0:
            raise ValueError(f"pad must be >= 0, got {pad}")
        if pad == 0:
            return self
        widths = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, widths)
        if _tape_off(self):
            return Tensor(out_data)
        sl = (Ellipsis, slice(pad, -pad), slice(pad, -pad))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[sl])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # backward pass

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)  # reprolint: disable=dtype-discipline -- f64 training/state policy
            if grad.shape != self.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != tensor shape {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def as_tensor(value: ArrayLike | Tensor) -> Tensor:
    """Wrap ``value`` in a non-grad :class:`Tensor` if it is not one."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if _tape_off(*tensors):
        return Tensor(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(lo, hi)
            t._accumulate(grad[tuple(sl)])

    return Tensor._make(out_data, tuple(tensors), backward)
