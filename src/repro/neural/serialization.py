"""Save/load model weights as ``.npz`` checkpoints."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

__all__ = ["save_weights", "load_weights", "load_state"]


def save_weights(model: Module, path: str | os.PathLike) -> None:
    """Write the model's state dict to ``path`` (npz)."""
    state = model.state_dict()
    os.makedirs(os.path.dirname(os.fspath(path)) or ".", exist_ok=True)
    # npz keys cannot contain '/', '.' is fine.
    np.savez_compressed(os.fspath(path), **state)


def load_state(path: str | os.PathLike) -> Dict[str, np.ndarray]:
    """Read a raw state dict from ``path``."""
    with np.load(os.fspath(path)) as archive:
        return {key: archive[key] for key in archive.files}


def load_weights(model: Module, path: str | os.PathLike) -> Module:
    """Load weights from ``path`` into ``model`` (strict) and return it."""
    model.load_state_dict(load_state(path))
    return model
