"""Save/load model weights as ``.npz`` checkpoints."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module

__all__ = ["save_weights", "load_weights", "load_state"]


def save_weights(model: Module, path: str | os.PathLike) -> None:
    """Write the model's state dict to ``path`` (npz), atomically.

    The archive is written to a ``.tmp`` sibling and moved into place with
    :func:`os.replace`, so an interrupted run can never leave a truncated
    checkpoint behind (the same pattern ``repro.cache.load_or_build``
    uses for pickled artifacts).
    """
    state = model.state_dict()
    target = os.fspath(path)
    os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    tmp = target + ".tmp"
    # npz keys cannot contain '/', '.' is fine. np.savez appends ".npz"
    # unless the filename already ends with it, so write to an explicit
    # .npz temp name and rename afterwards.
    tmp_npz = tmp if tmp.endswith(".npz") else tmp + ".npz"
    with open(tmp_npz, "wb") as fh:
        np.savez_compressed(fh, **state)
    os.replace(tmp_npz, target)


def load_state(path: str | os.PathLike) -> Dict[str, np.ndarray]:
    """Read a raw state dict from ``path``."""
    with np.load(os.fspath(path)) as archive:
        return {key: archive[key] for key in archive.files}


def load_weights(model: Module, path: str | os.PathLike) -> Module:
    """Load weights from ``path`` into ``model`` (strict) and return it."""
    model.load_state_dict(load_state(path))
    return model
