"""From-scratch numpy neural framework (autograd, CNN layers, SR models).

This package substitutes for the PyTorch / TensorFlow-Lite stack the paper
runs its EDSR super-resolution model on. See DESIGN.md for the substitution
rationale.
"""

from .alloc import reset_malloc_defaults, tune_malloc_for_large_arrays
from .functional import avg_pool2d, conv2d, pixel_shuffle
from .layers import (
    Conv2d,
    Module,
    PixelShuffle,
    PReLU,
    ReLU,
    ResidualBlock,
    Sequential,
    Upsampler,
)
from .loss import charbonnier_loss, l1_loss, mse_loss
from .models import EDSR, FSRCNNLite
from .optim import Adam, SGD, clip_grad_norm
from .serialization import load_state, load_weights, save_weights
from .tensor import (
    Tensor,
    active_dtype,
    as_tensor,
    concat,
    get_inference_dtype,
    is_grad_enabled,
    no_grad,
    set_inference_dtype,
)

__all__ = [
    "Adam",
    "Conv2d",
    "EDSR",
    "FSRCNNLite",
    "Module",
    "PReLU",
    "PixelShuffle",
    "ReLU",
    "ResidualBlock",
    "SGD",
    "Sequential",
    "Tensor",
    "Upsampler",
    "active_dtype",
    "as_tensor",
    "avg_pool2d",
    "get_inference_dtype",
    "set_inference_dtype",
    "charbonnier_loss",
    "clip_grad_norm",
    "concat",
    "conv2d",
    "is_grad_enabled",
    "l1_loss",
    "load_state",
    "load_weights",
    "mse_loss",
    "no_grad",
    "pixel_shuffle",
    "reset_malloc_defaults",
    "save_weights",
    "tune_malloc_for_large_arrays",
]

# Large-array allocator tuning is part of the fast inference path: without
# it every multi-MB conv temporary is a fresh mmap + page-fault storm.
# Honours REPRO_NO_MALLOC_TUNING=1; no-op on non-glibc platforms.
tune_malloc_for_large_arrays()
