"""From-scratch numpy neural framework (autograd, CNN layers, SR models).

This package substitutes for the PyTorch / TensorFlow-Lite stack the paper
runs its EDSR super-resolution model on. See DESIGN.md for the substitution
rationale.
"""

from .functional import avg_pool2d, conv2d, pixel_shuffle
from .layers import (
    Conv2d,
    Module,
    PixelShuffle,
    PReLU,
    ReLU,
    ResidualBlock,
    Sequential,
    Upsampler,
)
from .loss import charbonnier_loss, l1_loss, mse_loss
from .models import EDSR, FSRCNNLite
from .optim import Adam, SGD, clip_grad_norm
from .serialization import load_state, load_weights, save_weights
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "Conv2d",
    "EDSR",
    "FSRCNNLite",
    "Module",
    "PReLU",
    "PixelShuffle",
    "ReLU",
    "ResidualBlock",
    "SGD",
    "Sequential",
    "Tensor",
    "Upsampler",
    "as_tensor",
    "avg_pool2d",
    "charbonnier_loss",
    "clip_grad_norm",
    "concat",
    "conv2d",
    "is_grad_enabled",
    "l1_loss",
    "load_state",
    "load_weights",
    "mse_loss",
    "no_grad",
    "pixel_shuffle",
    "save_weights",
]
