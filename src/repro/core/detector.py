"""Server-side depth-guided RoI detector (paper Phase-1, Fig. 6).

Composes the Fig. 8 preprocessing with the Algorithm-1 search: given the
frame's depth buffer and the client's negotiated RoI window size, return
the RoI coordinates that travel to the client alongside the encoded frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import DEFAULT_ROI_CONFIG, RoIConfig
from .depth_preprocess import DepthPreprocessResult, preprocess_depth
from .roi_search import RoIBox, search_roi

__all__ = ["RoIDetection", "RoIDetector", "center_roi"]


@dataclass(frozen=True)
class RoIDetection:
    """Result of one detection: the box plus preprocessing intermediates."""

    box: RoIBox
    preprocess: DepthPreprocessResult


def center_roi(height: int, width: int, side: int) -> RoIBox:
    """A frame-centred square RoI (the no-detection fallback/ablation)."""
    side = min(side, height, width)
    return RoIBox(
        x=(width - side) // 2, y=(height - side) // 2, width=side, height=side
    )


class RoIDetector:
    """Depth-guided RoI detection with a fixed window size.

    Parameters
    ----------
    window_side:
        The square RoI side in LR-frame pixels (from
        :func:`repro.core.roi_sizing.plan_roi_window`, possibly rescaled
        for the frame geometry).
    config:
        Preprocessing/search knobs.
    """

    def __init__(self, window_side: int, config: RoIConfig = DEFAULT_ROI_CONFIG) -> None:
        if window_side < 2:
            raise ValueError(f"window_side must be >= 2, got {window_side}")
        self.window_side = window_side
        self.config = config

    def detect(self, depth: np.ndarray) -> RoIDetection:
        """Locate the RoI on one depth buffer."""
        depth = np.asarray(depth, dtype=np.float64)
        if depth.ndim != 2:
            raise ValueError(f"expected 2-D depth buffer, got {depth.shape}")
        height, width = depth.shape
        side = min(self.window_side, height, width)
        pre = preprocess_depth(depth, self.config)
        box = search_roi(
            pre.processed,
            win_h=side,
            win_w=side,
            fine_stride=self.config.fine_stride,
        )
        return RoIDetection(box=box.clamped(height, width), preprocess=pre)
