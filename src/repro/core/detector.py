"""Server-side depth-guided RoI detector (paper Phase-1, Fig. 6).

Composes the Fig. 8 preprocessing with the Algorithm-1 search: given the
frame's depth buffer and the client's negotiated RoI window size, return
the RoI coordinates that travel to the client alongside the encoded frame.

The detector is stateful only when the config opts into the temporal
warm start (``RoIConfig.warm_start``): consecutive frames then reuse the
previous full frame's global statistics (threshold / layer bounds /
selected layer — see ``DepthPreprocessStats``) for the per-pixel
preprocessing and search a local boundary around the previous box,
falling back to the full pipeline when the local winner's window sum
drops below ``warm_start_fraction`` of the running full-search
reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import shaped
from .config import DEFAULT_ROI_CONFIG, RoIConfig
from .depth_preprocess import (
    DepthPreprocessResult,
    DepthPreprocessStats,
    preprocess_depth,
)
from .roi_search import RoIBox, search_roi_scored, warm_search_roi

__all__ = ["RoIDetection", "RoIDetector", "center_roi"]


@dataclass(frozen=True)
class RoIDetection:
    """Result of one detection: the box plus preprocessing intermediates.

    ``search_mode`` records which path found the box ("full" = Algorithm 1,
    "warm" = accepted temporal warm start); ``score`` is the winning
    window's summed importance.
    """

    box: RoIBox
    preprocess: DepthPreprocessResult
    search_mode: str = "full"
    score: float = 0.0


def center_roi(height: int, width: int, side: int) -> RoIBox:
    """A frame-centred square RoI (the no-detection fallback/ablation)."""
    side = min(side, height, width)
    return RoIBox(
        x=(width - side) // 2, y=(height - side) // 2, width=side, height=side
    )


class RoIDetector:
    """Depth-guided RoI detection with a fixed window size.

    Parameters
    ----------
    window_side:
        The square RoI side in LR-frame pixels (from
        :func:`repro.core.roi_sizing.plan_roi_window`, possibly rescaled
        for the frame geometry).
    config:
        Preprocessing/search knobs.
    """

    def __init__(self, window_side: int, config: RoIConfig = DEFAULT_ROI_CONFIG) -> None:
        if window_side < 2:
            raise ValueError(f"window_side must be >= 2, got {window_side}")
        self.window_side = window_side
        self.config = config
        self._warm_prev: RoIBox | None = None
        self._warm_ref_score = 0.0
        self._warm_key: tuple[int, int, int] | None = None
        self._warm_stats: DepthPreprocessStats | None = None

    def reset(self) -> None:
        """Drop warm-start temporal state (scene cut / new session)."""
        self._warm_prev = None
        self._warm_ref_score = 0.0
        self._warm_key = None
        self._warm_stats = None

    @shaped(depth="H W:n")
    def detect(self, depth: np.ndarray) -> RoIDetection:
        """Locate the RoI on one depth buffer."""
        depth = np.asarray(depth, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
        if depth.ndim != 2:
            raise ValueError(f"expected 2-D depth buffer, got {depth.shape}")
        height, width = depth.shape
        side = min(self.window_side, height, width)
        config = self.config

        key = (height, width, side)
        if (
            config.warm_start
            and self._warm_prev is not None
            and self._warm_key == key
            and self._warm_stats is not None
        ):
            # Warm frame: per-pixel preprocessing under the previous full
            # frame's global statistics, then one local pass around the
            # previous box. Accepted only while the local winner keeps a
            # configurable fraction of the full search's reference score —
            # the guard that bounds both spatial and statistical staleness.
            pre = preprocess_depth(depth, config, reuse=self._warm_stats)
            if pre is not None:
                local = warm_search_roi(
                    pre.processed,
                    win_h=side,
                    win_w=side,
                    prev=self._warm_prev,
                    fine_stride=config.fine_stride,
                    boundary=config.warm_start_boundary,
                )
                if local.score >= config.warm_start_fraction * self._warm_ref_score:
                    # Track the best score the warm path has seen so the bar
                    # never decays below what full search last established.
                    self._warm_ref_score = max(self._warm_ref_score, local.score)
                    box = local.box.clamped(height, width)
                    self._warm_prev = box
                    return RoIDetection(
                        box=box, preprocess=pre, search_mode="warm", score=local.score
                    )

        pre = preprocess_depth(depth, config)
        result = search_roi_scored(
            pre.processed,
            win_h=side,
            win_w=side,
            fine_stride=config.fine_stride,
            bbox=pre.processed_bbox,
        )
        box = result.box.clamped(height, width)
        self._warm_prev = box
        self._warm_ref_score = result.score
        self._warm_key = key
        self._warm_stats = pre.stats
        return RoIDetection(box=box, preprocess=pre, search_mode="full", score=result.score)
