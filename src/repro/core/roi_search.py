"""RoI area search on the processed depth map (paper Algorithm 1).

A two-phase windowed max-sum search: a coarse pass strides the search
window by ``S = max(h, w) / 2`` across the whole map, then a fine pass
with stride ``s < S`` refines within a boundary ``b`` around the coarse
winner. Window sums are evaluated in O(1) via a summed-area table — the
numpy analogue of the parallel reduction the paper runs on GPU shader
cores. Ties break toward the frame centre (the paper's center-bias rule).

Fast-path structure (see DESIGN.md "Performance notes"):

- one summed-area table per frame, shared by the coarse and the fine
  pass (:func:`window_sums` accepts a precomputed ``sat``);
- when the caller knows a bounding box containing every nonzero value
  (the detector passes the selected depth layer's extent), the coarse
  grid is pruned to windows that can overlap it, coarse sums come from
  per-row-band prefix sums, and the table is built over just the fine
  pass's local neighbourhood;
- :func:`warm_search_roi` is the opt-in temporal warm start: a single
  local pass around the previous frame's box over a small regional
  table, with the accept/fall-back decision left to the caller
  (:class:`~repro.core.detector.RoIDetector`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import shaped

__all__ = [
    "RoIBox",
    "RoISearchResult",
    "search_roi",
    "search_roi_scored",
    "warm_search_roi",
    "window_sums",
]


@dataclass(frozen=True)
class RoIBox:
    """An axis-aligned RoI in pixel coordinates (top-left inclusive)."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"RoI must have positive size, got {self}")
        if self.x < 0 or self.y < 0:
            raise ValueError(f"RoI origin must be non-negative, got {self}")

    @property
    def x_end(self) -> int:
        return self.x + self.width

    @property
    def y_end(self) -> int:
        return self.y + self.height

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def scaled(self, factor: int) -> "RoIBox":
        """The same box on a ``factor``-x upscaled frame."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return RoIBox(
            self.x * factor, self.y * factor, self.width * factor, self.height * factor
        )

    def clamped(self, frame_height: int, frame_width: int) -> "RoIBox":
        """Shift the box (preserving size) to fit inside the frame."""
        if self.width > frame_width or self.height > frame_height:
            raise ValueError(
                f"RoI {self.width}x{self.height} larger than frame "
                f"{frame_width}x{frame_height}"
            )
        x = min(max(self.x, 0), frame_width - self.width)
        y = min(max(self.y, 0), frame_height - self.height)
        return RoIBox(x, y, self.width, self.height)

    def extract(self, frame: np.ndarray) -> np.ndarray:
        """Crop this box out of an (H, W[, C]) frame."""
        return frame[self.y : self.y_end, self.x : self.x_end]

    def contains_point(self, x: float, y: float) -> bool:
        return self.x <= x < self.x_end and self.y <= y < self.y_end

    def intersection_area(self, other: "RoIBox") -> int:
        dx = min(self.x_end, other.x_end) - max(self.x, other.x)
        dy = min(self.y_end, other.y_end) - max(self.y, other.y)
        return max(dx, 0) * max(dy, 0)


@dataclass(frozen=True)
class RoISearchResult:
    """A search outcome: the box, its window sum, and which path found it."""

    box: RoIBox
    score: float  # summed importance inside the winning window
    mode: str  # "full" (Algorithm 1) or "warm" (temporal local search)


def _integral_image(values: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top/left border.

    Row-then-column ``cumsum`` (the same accumulation order, and therefore
    the same float values, as the original ``zeros`` + double-``cumsum``
    construction), built in place in a single (H+1, W+1) allocation.
    Accumulates in float64.
    """
    h, w = values.shape
    sat = np.empty((h + 1, w + 1), dtype=np.float64)
    sat[0, :] = 0.0
    sat[1:, 0] = 0.0
    inner = sat[1:, 1:]
    np.cumsum(values, axis=0, out=inner)
    np.cumsum(inner, axis=1, out=inner)
    return sat


def window_sums(
    values: np.ndarray | None,
    win_h: int,
    win_w: int,
    ys: np.ndarray,
    xs: np.ndarray,
    sat: np.ndarray | None = None,
) -> np.ndarray:
    """Sum of each (win_h, win_w) window anchored at (ys x xs) grid points.

    Returns an array of shape (len(ys), len(xs)). Pass a precomputed
    ``sat`` (from the same values) to amortize the table across grids —
    Algorithm 1's coarse and fine passes share one table per frame; the
    anchors are then interpreted in the table's coordinate frame.
    """
    if sat is None:
        sat = _integral_image(np.asarray(values, dtype=np.float64))  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
    ys = np.asarray(ys)
    xs = np.asarray(xs)
    y0 = ys[:, None]
    x0 = xs[None, :]
    y1 = y0 + win_h
    x1 = x0 + win_w
    return sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]


def _best_position(
    sums: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    frame_center: tuple[float, float],
    win: tuple[int, int],
) -> tuple[int, int, float]:
    """Arg-max with center-distance tie-breaking (Algorithm 1 note).

    The tie set is the windows whose sums compare *exactly* equal to the
    maximum. (An earlier absolute 1e-9 epsilon was scale-blind: window
    sums grow with window area, so it silently widened the tie set for
    small windows and vanished for large ones.)
    """
    best = sums.max()
    tie_rows, tie_cols = np.nonzero(sums == best)
    cy, cx = frame_center
    win_h, win_w = win
    centers_y = ys[tie_rows] + win_h / 2.0
    centers_x = xs[tie_cols] + win_w / 2.0
    dist2 = (centers_y - cy) ** 2 + (centers_x - cx) ** 2
    pick = int(np.argmin(dist2))
    return int(ys[tie_rows[pick]]), int(xs[tie_cols[pick]]), float(best)


_NEAR_TIE_RTOL = 1e-9


def _near_tie(sums: np.ndarray) -> bool:
    """True when the two largest window sums are not clearly separated.

    The banded/regional evaluation schemes agree with the full-frame
    summed-area table to ~1e-13 relative, but an *exact* float tie under
    one scheme can split by an ulp under another — and then the
    center-bias tie-break resolves differently (mirror-symmetric scenes
    hit this in practice). A 1e-9 relative gap is orders of magnitude
    above the cross-scheme noise, so a winner this clear is the same
    winner under the full table; anything closer re-runs on the full
    table, which is bit-identical to the reference implementation.
    """
    flat = sums.ravel()
    if flat.size < 2:
        return False
    top2 = np.partition(flat, flat.size - 2)[flat.size - 2 :]
    gap = float(top2[1]) - float(top2[0])
    return gap <= _NEAR_TIE_RTOL * max(abs(float(top2[1])), 1.0)


def _grid(start: int, stop: int, stride: int) -> np.ndarray:
    """Stride grid over [start, stop] that always includes both endpoints."""
    start = max(start, 0)
    stop = max(stop, start)
    points = np.arange(start, stop + 1, stride, dtype=np.int64)
    if points[-1] != stop:
        points = np.append(points, stop)
    return points


def _grid_around(center: int, lo: int, hi: int, stride: int) -> np.ndarray:
    """Stride grid over [lo, hi] guaranteed to contain ``center``.

    The warm-start pass anchors the grid on the previous frame's position
    so a static scene re-finds exactly the previous box; both endpoints
    are always included (``lo <= center <= hi`` is the caller's job).
    """
    below = np.arange(center, lo - 1, -stride, dtype=np.int64)[::-1]
    above = np.arange(center + stride, hi + 1, stride, dtype=np.int64)
    points = np.concatenate((below, above))
    if points[0] != lo:
        points = np.concatenate(([lo], points))
    if points[-1] != hi:
        points = np.append(points, hi)
    return points


def _validate(
    processed: np.ndarray, win_h: int, win_w: int, fine_stride: int
) -> tuple[int, int]:
    if processed.ndim != 2:
        raise ValueError(f"expected 2-D map, got shape {processed.shape}")
    height, width = processed.shape
    if win_h > height or win_w > width:
        raise ValueError(f"window {win_h}x{win_w} larger than map {height}x{width}")
    if fine_stride < 1:
        raise ValueError("strides must be >= 1")
    return height, width


@shaped(processed="H W:n")
def search_roi_scored(
    processed: np.ndarray,
    win_h: int,
    win_w: int,
    coarse_stride: int | None = None,
    fine_stride: int = 2,
    boundary: int | None = None,
    bbox: tuple[int, int, int, int] | None = None,
) -> RoISearchResult:
    """Algorithm 1 with one summed-area table shared by both passes.

    Parameters mirror the paper: ``coarse_stride`` defaults to
    ``max(win_h, win_w) // 2``; ``boundary`` defaults to the coarse stride
    (the fine pass re-examines everything the coarse pass could have
    skipped over).

    Without ``bbox`` the two passes share one full-frame summed-area
    table (the seed rebuilt it per pass), keeping the float values — and
    therefore the exact tie sets — of the original implementation.

    ``bbox`` — optional ``(row0, row1, col0, col1)`` (inclusive) known to
    contain every nonzero value of ``processed`` (the detector passes the
    selected depth layer's extent). The coarse grid then drops windows
    that cannot overlap that region and its sums come from per-row-band
    column prefix sums (a handful of windows doesn't amortize a full
    table), while the fine pass builds a summed-area table over just its
    ``+-boundary`` neighbourhood. The winner is unaffected: a window with
    positive sum must overlap the nonzero region, exact ties among such
    windows all lie on the kept grid, and a map with no positive window
    ignores the hint entirely (full-table path). When either pruned pass
    cannot separate its top two windows by a clear relative gap
    (:func:`_near_tie`), the whole search re-runs on the shared
    full-frame table so exact ties break identically to the reference —
    the pruning is a pure evaluation-order optimization, never a
    different function.
    """
    processed = np.asarray(processed, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
    height, width = _validate(processed, win_h, win_w, fine_stride)
    if coarse_stride is None:
        coarse_stride = max(max(win_h, win_w) // 2, 1)
    if coarse_stride < 1:
        raise ValueError("strides must be >= 1")
    if fine_stride > coarse_stride:
        raise ValueError(
            f"fine stride ({fine_stride}) must not exceed coarse ({coarse_stride})"
        )
    if boundary is None:
        boundary = coarse_stride

    frame_center = ((height - 1) / 2.0, (width - 1) / 2.0)

    def full_table_search() -> tuple[int, int, float]:
        # One full-frame table shared by both passes — the float values
        # (and therefore the exact tie sets) of the reference path.
        sat = _integral_image(processed)
        cys = _grid(0, height - win_h, coarse_stride)
        cxs = _grid(0, width - win_w, coarse_stride)
        csums = window_sums(None, win_h, win_w, cys, cxs, sat=sat)
        cy, cx, _ = _best_position(csums, cys, cxs, frame_center, (win_h, win_w))
        fys = _grid(cy - boundary, min(cy + boundary, height - win_h), fine_stride)
        fxs = _grid(cx - boundary, min(cx + boundary, width - win_w), fine_stride)
        fsums = window_sums(None, win_h, win_w, fys, fxs, sat=sat)
        return _best_position(fsums, fys, fxs, frame_center, (win_h, win_w))

    ys = _grid(0, height - win_h, coarse_stride)
    xs = _grid(0, width - win_w, coarse_stride)

    banded = False
    if bbox is not None:
        br0, br1, bc0, bc1 = bbox
        keep_y = (ys + win_h > br0) & (ys <= br1)
        keep_x = (xs + win_w > bc0) & (xs <= bc1)
        if keep_y.any() and keep_x.any():
            ys = ys[keep_y]
            xs = xs[keep_x]
            banded = True

    if banded:
        # Coarse: per-row-band column prefix sums over the kept columns.
        cc0 = int(xs[0])
        cc1 = min(int(xs[-1]) + win_w, width)
        xoff = xs - cc0
        sums = np.empty((len(ys), len(xs)), dtype=np.float64)
        prefix = np.empty(cc1 - cc0 + 1, dtype=np.float64)
        prefix[0] = 0.0
        for i, y in enumerate(ys):
            band = processed[y : y + win_h, cc0:cc1].sum(axis=0)
            np.cumsum(band, out=prefix[1:])
            sums[i] = prefix[xoff + win_w] - prefix[xoff]
        if _near_tie(sums):
            fine_y, fine_x, score = full_table_search()
        else:
            coarse_y, coarse_x, _ = _best_position(
                sums, ys, xs, frame_center, (win_h, win_w)
            )
            # Fine: a table over just the +-boundary neighbourhood.
            ys = _grid(coarse_y - boundary, min(coarse_y + boundary, height - win_h), fine_stride)
            xs = _grid(coarse_x - boundary, min(coarse_x + boundary, width - win_w), fine_stride)
            r0, c0 = int(ys[0]), int(xs[0])
            r1 = min(int(ys[-1]) + win_h, height)
            c1 = min(int(xs[-1]) + win_w, width)
            sat = _integral_image(processed[r0:r1, c0:c1])
            sums = window_sums(None, win_h, win_w, ys - r0, xs - c0, sat=sat)
            if _near_tie(sums):
                fine_y, fine_x, score = full_table_search()
            else:
                fine_y, fine_x, score = _best_position(
                    sums, ys, xs, frame_center, (win_h, win_w)
                )
    else:
        fine_y, fine_x, score = full_table_search()

    return RoISearchResult(
        box=RoIBox(x=fine_x, y=fine_y, width=win_w, height=win_h),
        score=score,
        mode="full",
    )


def search_roi(
    processed: np.ndarray,
    win_h: int,
    win_w: int,
    coarse_stride: int | None = None,
    fine_stride: int = 2,
    boundary: int | None = None,
) -> RoIBox:
    """Algorithm 1: coarse + fine windowed max-sum search (box only)."""
    return search_roi_scored(
        processed, win_h, win_w, coarse_stride, fine_stride, boundary
    ).box


@shaped(processed="H W:n")
def warm_search_roi(
    processed: np.ndarray,
    win_h: int,
    win_w: int,
    prev: RoIBox,
    fine_stride: int = 2,
    boundary: int | None = None,
) -> RoISearchResult:
    """Temporal warm start: one local pass around the previous frame's box.

    Searches a ``fine_stride`` grid within ``+-boundary`` of ``prev``'s
    anchor over a regional summed-area table (``boundary`` defaults to the
    Algorithm-1 coarse stride). The grid always contains the previous
    anchor, so a static scene reproduces the previous box exactly. This
    function only reports the local winner and its sum; accepting it vs
    falling back to the full search is the caller's decision
    (:class:`~repro.core.detector.RoIDetector` compares ``score`` against
    its running full-search reference).
    """
    processed = np.asarray(processed, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
    height, width = _validate(processed, win_h, win_w, fine_stride)
    if boundary is None:
        boundary = max(max(win_h, win_w) // 2, 1)
    if boundary < 1:
        raise ValueError(f"boundary must be >= 1, got {boundary}")

    prev_y = min(max(prev.y, 0), height - win_h)
    prev_x = min(max(prev.x, 0), width - win_w)
    ys = _grid_around(prev_y, max(prev_y - boundary, 0), min(prev_y + boundary, height - win_h), fine_stride)
    xs = _grid_around(prev_x, max(prev_x - boundary, 0), min(prev_x + boundary, width - win_w), fine_stride)

    r0, c0 = int(ys[0]), int(xs[0])
    r1 = min(int(ys[-1]) + win_h, height)
    c1 = min(int(xs[-1]) + win_w, width)
    sat = _integral_image(processed[r0:r1, c0:c1])
    sums = window_sums(None, win_h, win_w, ys - r0, xs - c0, sat=sat)
    frame_center = ((height - 1) / 2.0, (width - 1) / 2.0)
    y, x, score = _best_position(sums, ys, xs, frame_center, (win_h, win_w))
    return RoISearchResult(
        box=RoIBox(x=x, y=y, width=win_w, height=win_h), score=score, mode="warm"
    )
