"""RoI area search on the processed depth map (paper Algorithm 1).

A two-phase windowed max-sum search: a coarse pass strides the search
window by ``S = max(h, w) / 2`` across the whole map, then a fine pass
with stride ``s < S`` refines within a boundary ``b`` around the coarse
winner. Window sums are evaluated in O(1) via a summed-area table — the
numpy analogue of the parallel reduction the paper runs on GPU shader
cores. Ties break toward the frame centre (the paper's center-bias rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RoIBox", "search_roi", "window_sums"]


@dataclass(frozen=True)
class RoIBox:
    """An axis-aligned RoI in pixel coordinates (top-left inclusive)."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"RoI must have positive size, got {self}")
        if self.x < 0 or self.y < 0:
            raise ValueError(f"RoI origin must be non-negative, got {self}")

    @property
    def x_end(self) -> int:
        return self.x + self.width

    @property
    def y_end(self) -> int:
        return self.y + self.height

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def scaled(self, factor: int) -> "RoIBox":
        """The same box on a ``factor``-x upscaled frame."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return RoIBox(
            self.x * factor, self.y * factor, self.width * factor, self.height * factor
        )

    def clamped(self, frame_height: int, frame_width: int) -> "RoIBox":
        """Shift the box (preserving size) to fit inside the frame."""
        if self.width > frame_width or self.height > frame_height:
            raise ValueError(
                f"RoI {self.width}x{self.height} larger than frame "
                f"{frame_width}x{frame_height}"
            )
        x = min(max(self.x, 0), frame_width - self.width)
        y = min(max(self.y, 0), frame_height - self.height)
        return RoIBox(x, y, self.width, self.height)

    def extract(self, frame: np.ndarray) -> np.ndarray:
        """Crop this box out of an (H, W[, C]) frame."""
        return frame[self.y : self.y_end, self.x : self.x_end]

    def contains_point(self, x: float, y: float) -> bool:
        return self.x <= x < self.x_end and self.y <= y < self.y_end

    def intersection_area(self, other: "RoIBox") -> int:
        dx = min(self.x_end, other.x_end) - max(self.x, other.x)
        dy = min(self.y_end, other.y_end) - max(self.y, other.y)
        return max(dx, 0) * max(dy, 0)


def _integral_image(values: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top/left border."""
    sat = np.zeros((values.shape[0] + 1, values.shape[1] + 1))
    np.cumsum(np.cumsum(values, axis=0), axis=1, out=sat[1:, 1:])
    return sat


def window_sums(
    values: np.ndarray, win_h: int, win_w: int, ys: np.ndarray, xs: np.ndarray
) -> np.ndarray:
    """Sum of each (win_h, win_w) window anchored at (ys x xs) grid points.

    Returns an array of shape (len(ys), len(xs)).
    """
    sat = _integral_image(values)
    y0 = ys[:, None]
    x0 = xs[None, :]
    y1 = y0 + win_h
    x1 = x0 + win_w
    return sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]


def _best_position(
    sums: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    frame_center: tuple[float, float],
    win: tuple[int, int],
) -> tuple[int, int]:
    """Arg-max with center-distance tie-breaking (Algorithm 1 note)."""
    best = sums.max()
    tie_rows, tie_cols = np.nonzero(sums >= best - 1e-9)
    cy, cx = frame_center
    win_h, win_w = win
    centers_y = ys[tie_rows] + win_h / 2.0
    centers_x = xs[tie_cols] + win_w / 2.0
    dist2 = (centers_y - cy) ** 2 + (centers_x - cx) ** 2
    pick = int(np.argmin(dist2))
    return int(ys[tie_rows[pick]]), int(xs[tie_cols[pick]])


def _grid(start: int, stop: int, stride: int) -> np.ndarray:
    """Stride grid over [start, stop] that always includes both endpoints."""
    start = max(start, 0)
    stop = max(stop, start)
    points = np.arange(start, stop + 1, stride)
    if points[-1] != stop:
        points = np.append(points, stop)
    return points


def search_roi(
    processed: np.ndarray,
    win_h: int,
    win_w: int,
    coarse_stride: int | None = None,
    fine_stride: int = 2,
    boundary: int | None = None,
) -> RoIBox:
    """Algorithm 1: coarse + fine windowed max-sum search.

    Parameters mirror the paper: ``coarse_stride`` defaults to
    ``max(win_h, win_w) // 2``; ``boundary`` defaults to the coarse stride
    (the fine pass re-examines everything the coarse pass could have
    skipped over).
    """
    processed = np.asarray(processed, dtype=np.float64)
    if processed.ndim != 2:
        raise ValueError(f"expected 2-D map, got shape {processed.shape}")
    height, width = processed.shape
    if win_h > height or win_w > width:
        raise ValueError(
            f"window {win_h}x{win_w} larger than map {height}x{width}"
        )
    if coarse_stride is None:
        coarse_stride = max(max(win_h, win_w) // 2, 1)
    if coarse_stride < 1 or fine_stride < 1:
        raise ValueError("strides must be >= 1")
    if fine_stride > coarse_stride:
        raise ValueError(
            f"fine stride ({fine_stride}) must not exceed coarse ({coarse_stride})"
        )
    if boundary is None:
        boundary = coarse_stride

    frame_center = ((height - 1) / 2.0, (width - 1) / 2.0)

    # Coarse pass over the full map.
    ys = _grid(0, height - win_h, coarse_stride)
    xs = _grid(0, width - win_w, coarse_stride)
    sums = window_sums(processed, win_h, win_w, ys, xs)
    coarse_y, coarse_x = _best_position(sums, ys, xs, frame_center, (win_h, win_w))

    # Fine pass within +-boundary of the coarse winner.
    ys = _grid(coarse_y - boundary, min(coarse_y + boundary, height - win_h), fine_stride)
    xs = _grid(coarse_x - boundary, min(coarse_x + boundary, width - win_w), fine_stride)
    sums = window_sums(processed, win_h, win_w, ys, xs)
    fine_y, fine_x = _best_position(sums, ys, xs, frame_center, (win_h, win_w))

    return RoIBox(x=fine_x, y=fine_y, width=win_w, height=win_h)
