"""GameStreamSR core: RoI sizing, depth-guided detection, hybrid upscaling.

This package is the paper's primary contribution (Sec. IV): the
session-start RoI window negotiation, the server-side depth-buffer RoI
detector (Fig. 8 preprocessing + Algorithm 1 search), and the client-side
RoI-assisted hybrid upscaler (Fig. 9).
"""

from .config import DEFAULT_ROI_CONFIG, RoIConfig
from .depth_preprocess import (
    DepthPreprocessResult,
    DepthPreprocessStats,
    center_weight_matrix,
    extract_foreground,
    foreground_threshold,
    layer_bounds,
    nearness,
    preprocess_depth,
)
from .detector import RoIDetection, RoIDetector, center_roi
from .roi_search import (
    RoIBox,
    RoISearchResult,
    search_roi,
    search_roi_scored,
    warm_search_roi,
    window_sums,
)
from .roi_sizing import (
    RoIWindowPlan,
    foveal_diameter_cm,
    foveal_diameter_inches,
    min_roi_side_px,
    plan_roi_window,
)
from .upscaler import HybridUpscaleResult, RoIAssistedUpscaler

__all__ = [
    "DEFAULT_ROI_CONFIG",
    "DepthPreprocessResult",
    "DepthPreprocessStats",
    "HybridUpscaleResult",
    "RoIBox",
    "RoIConfig",
    "RoIDetection",
    "RoIDetector",
    "RoISearchResult",
    "RoIWindowPlan",
    "RoIAssistedUpscaler",
    "center_roi",
    "center_weight_matrix",
    "extract_foreground",
    "foreground_threshold",
    "foveal_diameter_cm",
    "foveal_diameter_inches",
    "layer_bounds",
    "min_roi_side_px",
    "nearness",
    "plan_roi_window",
    "preprocess_depth",
    "search_roi",
    "search_roi_scored",
    "warm_search_roi",
    "window_sums",
]
