"""Typed configuration for the GameStreamSR core pipeline."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RoIConfig", "DEFAULT_ROI_CONFIG"]


@dataclass(frozen=True)
class RoIConfig:
    """Knobs of the depth-guided RoI detection (Sec. IV-B2 / Fig. 8).

    Attributes
    ----------
    histogram_bins:
        Bins of the depth histogram used for foreground extraction.
    valley_smoothing:
        Moving-average window (bins) applied before valley search.
    valley_min_mass:
        Fraction of foreground mass that must precede a valley (keeps the
        threshold from cutting inside the first peak).
    valley_dip_ratio:
        A bin qualifies as the foreground/background gap when its smoothed
        count falls below this fraction of the tallest peak seen so far.
    center_sigma_frac:
        Std-dev of the Gaussian center-bias weight, as a fraction of the
        frame diagonal.
    center_weight:
        Peak amplitude of the additive center-bias weight (importance is
        normalized to [0, 1] before weighting).
    n_layers:
        Number of depth layers the weighted map is divided into.
    layer_mode:
        ``"quantile"`` (default) forms equal-population layers;
        ``"range"`` is the paper's literal equal-value-range layering,
        which degenerates on continuous depth distributions (ground
        planes) — see the A1 ablation bench.
    fine_stride:
        Fine search stride ``s`` of Algorithm 1 (coarse stride is
        ``max(h, w) / 2`` per the paper).
    upscale_factor:
        SR factor (paper fixes 2 for quality reasons, Sec. II-C).
    warm_start:
        Opt-in temporal warm start: :class:`~repro.core.detector.
        RoIDetector` first searches a local boundary around the previous
        frame's box and accepts the local winner when its window sum stays
        within ``warm_start_fraction`` of the running full-search
        reference; otherwise it falls back to the full Algorithm-1 search.
        Off by default — results can then differ from per-frame full
        search whenever the local winner passes the acceptance bar.
    warm_start_fraction:
        Acceptance bar for the warm-start local winner, as a fraction of
        the best full-search window sum seen so far (in (0, 1]).
    warm_start_boundary:
        Half-width of the warm-start local search around the previous
        box's anchor; None uses the Algorithm-1 coarse stride
        (``max(h, w) // 2``).
    """

    histogram_bins: int = 64
    valley_smoothing: int = 3
    valley_min_mass: float = 0.10
    valley_dip_ratio: float = 0.15
    center_sigma_frac: float = 0.20
    center_weight: float = 1.0
    n_layers: int = 4
    layer_mode: str = "quantile"
    fine_stride: int = 2
    upscale_factor: int = 2
    warm_start: bool = False
    warm_start_fraction: float = 0.85
    warm_start_boundary: int | None = None

    def __post_init__(self) -> None:
        if self.histogram_bins < 4:
            raise ValueError(f"histogram_bins must be >= 4, got {self.histogram_bins}")
        if self.valley_smoothing < 1:
            raise ValueError(f"valley_smoothing must be >= 1, got {self.valley_smoothing}")
        if not 0 < self.center_sigma_frac <= 2:
            raise ValueError(f"center_sigma_frac out of range: {self.center_sigma_frac}")
        if self.center_weight < 0:
            raise ValueError(f"center_weight must be >= 0, got {self.center_weight}")
        if self.n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {self.n_layers}")
        if self.layer_mode not in ("quantile", "range"):
            raise ValueError(
                f"layer_mode must be 'quantile' or 'range', got {self.layer_mode!r}"
            )
        if not 0 <= self.valley_min_mass < 1:
            raise ValueError(f"valley_min_mass out of range: {self.valley_min_mass}")
        if not 0 < self.valley_dip_ratio < 1:
            raise ValueError(f"valley_dip_ratio out of range: {self.valley_dip_ratio}")
        if self.fine_stride < 1:
            raise ValueError(f"fine_stride must be >= 1, got {self.fine_stride}")
        if self.upscale_factor < 1:
            raise ValueError(f"upscale_factor must be >= 1, got {self.upscale_factor}")
        if not 0 < self.warm_start_fraction <= 1:
            raise ValueError(
                f"warm_start_fraction out of range: {self.warm_start_fraction}"
            )
        if self.warm_start_boundary is not None and self.warm_start_boundary < 1:
            raise ValueError(
                f"warm_start_boundary must be >= 1, got {self.warm_start_boundary}"
            )


DEFAULT_ROI_CONFIG = RoIConfig()
