"""Depth-map preprocessing (paper Fig. 8, Sec. IV-B2).

Transforms the raw server-side depth buffer into a single "importance"
map on which Algorithm 1 searches for the RoI. The four paper stages:

1. **Foreground extraction** — a coarse histogram analysis finds the
   valley between the foreground and background depth clusters and masks
   the background out.
2. **Spatial weighting** — a Gaussian center-bias matrix is added
   pixel-wise (players look at the screen centre).
3. **Depth-map layering** — the weighted map is evenly divided into
   layers by value range.
4. **Depth-layer selection** — the layer with the maximum total value is
   kept; all other pixels are zeroed.

Depth convention: input depth is the renderer's linearized Z in [0, 1]
with 0 = near. Since the paper's "darkness intensity represents nearness"
and its search maximizes summed values, we first convert depth to
*nearness* (``1 - depth``) so larger = more important.

Fast-path structure (see DESIGN.md "Performance notes"): the depth
buffer is validated once per :func:`preprocess_depth` call instead of
once per helper; the center-bias matrix is memoized on (H, W, config);
the histogram and the layer quantiles run through exact single-pass
replicas of ``np.histogram``/``np.quantile`` (same arithmetic, no
general-purpose dispatch); weighting/layering/selection operate on the
gathered foreground values only; and the per-layer sums are one
``np.bincount`` pass. ``weighted`` and ``layer_index`` full-frame
intermediates are materialized lazily — the detector never touches them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

import numpy as np

from ..contracts import shaped
from .config import DEFAULT_ROI_CONFIG, RoIConfig

__all__ = [
    "nearness",
    "foreground_threshold",
    "extract_foreground",
    "center_weight_matrix",
    "layer_bounds",
    "DepthPreprocessResult",
    "DepthPreprocessStats",
    "preprocess_depth",
]


class DepthPreprocessStats(NamedTuple):
    """The frame-global statistics Fig. 8 derives before its per-pixel work.

    Everything in the preprocessing pipeline is per-pixel *except* these
    three: the foreground threshold (histogram analysis), the layer value
    bounds (quantiles of the foreground values), and the selected layer
    (arg-max of the per-layer sums). The warm-start path reuses the
    previous full frame's stats (see :func:`preprocess_depth`'s ``reuse``)
    — the expensive global reductions are exactly what temporal coherence
    makes redundant — and the detector's score-fraction fallback is what
    bounds how stale they can get.
    """

    foreground_threshold: float
    layer_bounds: np.ndarray
    selected_layer: int


#: Slack accepted on the [0, 1] depth-range validation: renderers and
#: resamplers may overshoot the unit range by a few ulp-scale rounding
#: errors without the data being wrong.
_DEPTH_RANGE_SLACK = 1e-9

#: A foreground depth spread below this is a single depth plane.
_DEGENERATE_DEPTH_SPREAD = 1e-9


def _check_depth(depth: np.ndarray) -> np.ndarray:
    depth = np.asarray(depth, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
    if depth.ndim != 2:
        raise ValueError(f"expected a 2-D depth map, got shape {depth.shape}")
    if depth.size == 0:
        raise ValueError("depth map is empty")
    dmin, dmax = depth.min(), depth.max()
    if dmin < -_DEPTH_RANGE_SLACK or dmax > 1 + _DEPTH_RANGE_SLACK:
        raise ValueError("depth values must lie in [0, 1]")
    if dmin >= 0.0 and dmax <= 1.0:
        return depth  # already in range: the clip would be a no-op copy
    return np.clip(depth, 0.0, 1.0)


def nearness(depth: np.ndarray) -> np.ndarray:
    """Convert [0=near, 1=far] depth into [0=far, 1=near] importance."""
    return 1.0 - _check_depth(depth)


def _uniform_histogram(
    values: np.ndarray, n_bins: int, lo: float, hi: float
) -> tuple[np.ndarray, np.ndarray]:
    """Exact replica of ``np.histogram(values, bins=n_bins, range=(lo, hi))``
    for 1-D float64 ``values`` already inside [lo, hi] with ``hi > lo``.

    Performs numpy's uniform-bin arithmetic (bin index from the normalized
    position, then the two boundary fix-ups against the edge array) in one
    vectorized pass instead of numpy's 64Ki-element block loop — the counts
    are bit-identical (verified against ``np.histogram`` in the test
    suite), just cheaper on ~1M-pixel frames.
    """
    edges = np.linspace(lo, hi, n_bins + 1, dtype=np.float64)
    indices = ((values - lo) / (hi - lo) * n_bins).astype(np.intp)
    np.subtract(indices, indices == n_bins, out=indices, casting="unsafe")
    # Values whose computed bin lies right of the edge they belong to...
    np.subtract(indices, values < edges[indices], out=indices, casting="unsafe")
    # ...and left of it (never moving past the last bin).
    np.add(
        indices,
        (values >= edges[indices + 1]) & (indices != n_bins - 1),
        out=indices,
        casting="unsafe",
    )
    counts = np.bincount(indices, minlength=n_bins)
    return counts, edges


def _quantile_linear(values: np.ndarray, quantiles: np.ndarray) -> np.ndarray:
    """Exact replica of ``np.quantile(values, quantiles)`` (linear method)
    for 1-D float64 data: same virtual indexes, same partition points, and
    the same two-sided ``_lerp`` rule, without the general-method dispatch.
    """
    n = values.size
    virtual = (n - 1) * quantiles
    previous = np.floor(virtual)
    nxt = previous + 1.0
    above = virtual >= n - 1
    previous[above] = -1
    nxt[above] = -1
    prev_i = previous.astype(np.intp)
    next_i = nxt.astype(np.intp)

    arr = values.copy()
    arr.partition(np.unique(np.concatenate(([0, -1], prev_i, next_i))))
    a = arr[prev_i]
    b = arr[next_i]
    gamma = virtual - previous
    diff = b - a
    result = a + diff * gamma
    high = gamma >= 0.5
    result[high] = b[high] - diff[high] * (1.0 - gamma[high])
    return result


def _foreground_threshold(depth: np.ndarray, config: RoIConfig) -> float:
    """Threshold on an already-validated depth map (see public wrapper)."""
    finite = depth[depth < 1.0]
    if finite.size == 0:
        return 1.0  # everything is background; keep all (degenerate frame)
    lo, hi = float(finite.min()), float(finite.max())
    if hi - lo < _DEGENERATE_DEPTH_SPREAD:
        return hi  # single depth plane
    hist, edges = _uniform_histogram(finite, config.histogram_bins, lo, hi)
    kernel = np.ones(config.valley_smoothing, dtype=np.float64) / config.valley_smoothing
    smooth = np.convolve(hist.astype(np.float64), kernel, mode="same")  # reprolint: disable=dtype-discipline -- exact int counts
    cumulative = np.cumsum(hist)

    peak_seen = smooth[0]
    for i in range(1, len(smooth) - 1):
        peak_seen = max(peak_seen, smooth[i])
        is_local_min = smooth[i] <= smooth[i - 1] and smooth[i] <= smooth[i + 1]
        mass_before = cumulative[i]
        mass_after = finite.size - cumulative[i]
        # A genuine fg/bg gap separates two *substantial* clusters.
        if (
            is_local_min
            and mass_before > config.valley_min_mass * finite.size
            and mass_after > config.valley_min_mass * finite.size
            and smooth[i] < config.valley_dip_ratio * peak_seen
        ):
            return float(edges[i + 1])

    # Otsu fallback on the histogram.
    probs = hist.astype(np.float64) / hist.sum()  # reprolint: disable=dtype-discipline -- exact int counts
    centers = (edges[:-1] + edges[1:]) / 2.0
    omega = np.cumsum(probs)
    mu = np.cumsum(probs * centers)
    mu_total = mu[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma_b = (mu_total * omega - mu) ** 2 / (omega * (1.0 - omega))
    sigma_b[~np.isfinite(sigma_b)] = -1.0
    # An argmax on the last bin would return ``hi`` itself, classifying
    # every finite pixel as foreground and defeating the masking step;
    # clamp the split strictly inside the histogram.
    split = min(int(np.argmax(sigma_b)), len(hist) - 2)
    return float(edges[split + 1])


def foreground_threshold(depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG) -> float:
    """Depth value separating foreground from background.

    Builds the depth histogram (pixels at depth 1.0 — sky/background with
    nothing rendered — are excluded up front), smooths it, and walks it
    near-to-far looking for the first *significant gap*: a local minimum
    whose count drops below ``valley_dip_ratio`` of the tallest peak seen
    so far, after at least ``valley_min_mass`` of the pixel mass has been
    covered (the paper's "noticeable gap between foreground and background
    depth values"). Falls back to Otsu's threshold when no gap exists
    (smooth unimodal distributions). Returns a threshold in (0, 1];
    pixels with ``depth <= threshold`` are foreground.
    """
    return _foreground_threshold(_check_depth(depth), config)


def extract_foreground(
    depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> tuple[np.ndarray, float]:
    """Foreground mask (bool) and the threshold used (Fig. 8 step-1)."""
    depth = _check_depth(depth)
    threshold = _foreground_threshold(depth, config)
    return depth <= threshold, threshold


@lru_cache(maxsize=16)
def _center_weights_cached(
    height: int, width: int, sigma_frac: float, weight: float
) -> np.ndarray:
    ys = np.arange(height, dtype=np.float64) - (height - 1) / 2.0
    xs = np.arange(width, dtype=np.float64) - (width - 1) / 2.0
    sigma = sigma_frac * np.hypot(height, width)
    gauss = np.exp(-(ys[:, None] ** 2 + xs[None, :] ** 2) / (2.0 * sigma**2))
    out = weight * gauss
    out.flags.writeable = False
    return out


def center_weight_matrix(
    height: int, width: int, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> np.ndarray:
    """Gaussian center-bias weights in [0, center_weight] (Fig. 8 step-2).

    Memoized on (height, width, sigma, amplitude) — the detector asks for
    the same matrix every frame. The returned array is read-only; copy it
    before mutating.
    """
    if height < 1 or width < 1:
        raise ValueError(f"invalid shape ({height}, {width})")
    return _center_weights_cached(
        height, width, config.center_sigma_frac, config.center_weight
    )


def layer_bounds(
    weighted: np.ndarray, n_layers: int, mode: str = "quantile"
) -> np.ndarray:
    """Value boundaries dividing ``weighted`` into ``n_layers`` layers.

    ``mode="range"`` is the paper's literal even division of the value
    range; ``mode="quantile"`` (the default here) forms equal-population
    layers, which keeps the max-sum layer selection meaningful when depth
    is a continuum (ground planes) rather than discrete object clusters —
    see the RoIConfig docstring and the A1 ablation.
    """
    values = np.asarray(weighted, dtype=np.float64).reshape(-1)  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
    if values.size == 0:
        raise ValueError("cannot layer an empty value set")
    if mode == "range":
        lo = float(values.min())
        hi = float(values.max())
        return _strictly_increasing(np.linspace(lo, hi, n_layers + 1))
    if mode == "quantile":
        bounds = _quantile_linear(values, np.linspace(0.0, 1.0, n_layers + 1))
        return _strictly_increasing(bounds)
    raise ValueError(f"unknown layer mode {mode!r}")


def _strictly_increasing(bounds: np.ndarray) -> np.ndarray:
    """Bump duplicate bin edges so layer assignment stays sane.

    A fixed +1e-12 bump rounds away once bounds exceed ~1e4 in magnitude
    (ulp > 1e-12), leaving non-increasing bounds and collapsing layers;
    nextafter always moves. When the span is narrower than n_layers ulps
    (constant input) even linspace cannot separate the edges, so the
    walk is needed in both modes.
    """
    for i in range(1, len(bounds)):
        if bounds[i] <= bounds[i - 1]:
            bounds[i] = np.nextafter(bounds[i - 1], np.inf)
    return bounds


class DepthPreprocessResult:
    """All intermediates of the Fig. 8 pipeline (useful for ablations).

    ``weighted`` and ``layer_index`` (full-frame views of steps 2-3) are
    materialized lazily on first access — the detection hot path only
    consumes ``processed`` and ``processed_bbox``.
    """

    __slots__ = (
        "foreground_mask",
        "foreground_threshold",
        "weight_matrix",
        "layer_value_bounds",
        "selected_layer",
        "processed",
        "processed_bbox",
        "_weighted",
        "_layer_index",
        "_fg_flat",
        "_fg_values",
        "_fg_layer",
    )

    def __init__(
        self,
        *,
        foreground_mask: np.ndarray,
        foreground_threshold: float,
        weight_matrix: np.ndarray,
        selected_layer: int,
        processed: np.ndarray,
        processed_bbox: tuple[int, int, int, int] | None,
        layer_value_bounds: np.ndarray | None = None,
        weighted: np.ndarray | None = None,
        layer_index: np.ndarray | None = None,
        fg_flat: np.ndarray | None = None,
        fg_values: np.ndarray | None = None,
        fg_layer: np.ndarray | None = None,
    ) -> None:
        self.foreground_mask = foreground_mask
        self.foreground_threshold = foreground_threshold
        self.weight_matrix = weight_matrix
        # Value boundaries used for layering (None on degenerate frames).
        self.layer_value_bounds = layer_value_bounds
        self.selected_layer = selected_layer
        self.processed = processed  # the map Algorithm 1 searches on
        # (row0, row1, col0, col1), inclusive, bounding the selected layer
        # (a superset of processed's nonzero extent); None when the whole
        # frame is in play (degenerate all-background frames).
        self.processed_bbox = processed_bbox
        self._weighted = weighted
        self._layer_index = layer_index
        self._fg_flat = fg_flat
        self._fg_values = fg_values
        self._fg_layer = fg_layer

    @property
    def shape(self) -> tuple[int, int]:
        return self.processed.shape

    @property
    def stats(self) -> DepthPreprocessStats | None:
        """The frame-global statistics, reusable via ``reuse=`` (or None
        for degenerate frames, which have no layering)."""
        if self.layer_value_bounds is None:
            return None
        return DepthPreprocessStats(
            foreground_threshold=self.foreground_threshold,
            layer_bounds=self.layer_value_bounds,
            selected_layer=self.selected_layer,
        )

    @property
    def weighted(self) -> np.ndarray:
        """Center-weighted foreground importance (0 outside the mask)."""
        if self._weighted is None:
            out = np.zeros(self.processed.shape, dtype=np.float64)
            out.ravel()[self._fg_flat] = self._fg_values
            self._weighted = out
        return self._weighted

    @property
    def layer_index(self) -> np.ndarray:
        """Per-pixel layer id; -1 = background."""
        if self._layer_index is None:
            out = np.full(self.processed.shape, -1, dtype=np.int64)
            out.ravel()[self._fg_flat] = self._fg_layer
            self._layer_index = out
        return self._layer_index

    def __repr__(self) -> str:
        h, w = self.processed.shape
        return (
            f"DepthPreprocessResult(shape=({h}, {w}), "
            f"threshold={self.foreground_threshold:.4g}, "
            f"selected_layer={self.selected_layer})"
        )


@shaped(depth="H W:n")
def preprocess_depth(
    depth: np.ndarray,
    config: RoIConfig = DEFAULT_ROI_CONFIG,
    *,
    reuse: DepthPreprocessStats | None = None,
) -> DepthPreprocessResult | None:
    """Run the full Fig. 8 preprocessing pipeline on a depth buffer.

    The depth buffer is validated exactly once; steps 2-4 then run on the
    gathered foreground values (elementwise-identical to the full-frame
    formulation, since every per-pixel op is independent).

    ``reuse`` — optional :class:`DepthPreprocessStats` from a previous
    frame (the warm-start path): the histogram threshold, quantile
    bounds, and layer arg-max are *reused* instead of recomputed, leaving
    only the per-pixel passes. The result is then the Fig. 8 output the
    previous frame's statistics would produce on this depth buffer — an
    approximation whose staleness the detector bounds through its
    score-fraction fallback. Returns ``None`` when the stale statistics
    no longer apply at all (no foreground pixel under the old threshold,
    or none in the old selected layer); the caller must fall back to a
    full (``reuse=None``) run, which never returns None.
    """
    depth = _check_depth(depth)
    height, width = depth.shape

    if reuse is not None:
        threshold = reuse.foreground_threshold
    else:
        threshold = _foreground_threshold(depth, config)
    mask = depth <= threshold
    weights = center_weight_matrix(height, width, config=config)

    flat = np.flatnonzero(mask.ravel())
    if flat.size == 0:
        if reuse is not None:
            return None
        # Degenerate frame (all background): keep the weighted map as-is so
        # the search still resolves to the frame centre via the weights.
        weighted_all = (1.0 - depth) + weights
        return DepthPreprocessResult(
            foreground_mask=mask,
            foreground_threshold=threshold,
            weight_matrix=weights,
            selected_layer=0,
            processed=weighted_all,
            processed_bbox=None,
            weighted=weighted_all,
            layer_index=np.zeros(depth.shape, dtype=np.int64),
        )

    # Steps 2-3 on the foreground subset only (identical values to the
    # full-frame `np.where(mask, importance + weights, 0.0)`).
    fg_values = (1.0 - depth.ravel()[flat]) + weights.ravel()[flat]

    if reuse is not None:
        bounds = reuse.layer_bounds
    else:
        bounds = layer_bounds(fg_values, config.n_layers, mode=config.layer_mode)
    n_layers = config.n_layers
    if n_layers == 1:
        fg_layer = np.zeros(fg_values.size, dtype=np.int64)
    else:
        # Equivalent to clip(searchsorted(bounds, v, "right") - 1, 0, n-1)
        # for non-decreasing bounds with v >= bounds[0] (when the bounds
        # come from this frame, bounds[0] is the subset minimum; stale
        # bounds clip values outside their range into the edge layers):
        # count the interior bounds at or below v.
        fg_layer = (fg_values >= bounds[1]).astype(np.int64)
        for i in range(2, n_layers):
            fg_layer += fg_values >= bounds[i]

    if reuse is not None:
        selected = reuse.selected_layer
    else:
        sums = np.bincount(fg_layer, weights=fg_values, minlength=n_layers)
        selected = int(np.argmax(sums))

    keep = fg_layer == selected
    sel_flat = flat[keep]
    if sel_flat.size == 0:
        # Only reachable with stale stats: this frame has no pixel left in
        # the previously selected layer.
        return None
    processed = np.zeros(depth.shape, dtype=np.float64)
    processed.ravel()[sel_flat] = fg_values[keep]

    # flat indices are sorted, so the row extent is free; columns need one
    # modulo pass over the selected subset.
    row0 = int(sel_flat[0]) // width
    row1 = int(sel_flat[-1]) // width
    cols = sel_flat % width
    bbox = (row0, row1, int(cols.min()), int(cols.max()))

    return DepthPreprocessResult(
        foreground_mask=mask,
        foreground_threshold=threshold,
        weight_matrix=weights,
        layer_value_bounds=bounds,
        selected_layer=selected,
        processed=processed,
        processed_bbox=bbox,
        fg_flat=flat,
        fg_values=fg_values,
        fg_layer=fg_layer,
    )
