"""Depth-map preprocessing (paper Fig. 8, Sec. IV-B2).

Transforms the raw server-side depth buffer into a single "importance"
map on which Algorithm 1 searches for the RoI. The four paper stages:

1. **Foreground extraction** — a coarse histogram analysis finds the
   valley between the foreground and background depth clusters and masks
   the background out.
2. **Spatial weighting** — a Gaussian center-bias matrix is added
   pixel-wise (players look at the screen centre).
3. **Depth-map layering** — the weighted map is evenly divided into
   layers by value range.
4. **Depth-layer selection** — the layer with the maximum total value is
   kept; all other pixels are zeroed.

Depth convention: input depth is the renderer's linearized Z in [0, 1]
with 0 = near. Since the paper's "darkness intensity represents nearness"
and its search maximizes summed values, we first convert depth to
*nearness* (``1 - depth``) so larger = more important.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import DEFAULT_ROI_CONFIG, RoIConfig

__all__ = [
    "nearness",
    "foreground_threshold",
    "extract_foreground",
    "center_weight_matrix",
    "layer_bounds",
    "DepthPreprocessResult",
    "preprocess_depth",
]


def _check_depth(depth: np.ndarray) -> np.ndarray:
    depth = np.asarray(depth, dtype=np.float64)
    if depth.ndim != 2:
        raise ValueError(f"expected a 2-D depth map, got shape {depth.shape}")
    if depth.size == 0:
        raise ValueError("depth map is empty")
    if depth.min() < -1e-9 or depth.max() > 1 + 1e-9:
        raise ValueError("depth values must lie in [0, 1]")
    return np.clip(depth, 0.0, 1.0)


def nearness(depth: np.ndarray) -> np.ndarray:
    """Convert [0=near, 1=far] depth into [0=far, 1=near] importance."""
    return 1.0 - _check_depth(depth)


def foreground_threshold(depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG) -> float:
    """Depth value separating foreground from background.

    Builds the depth histogram (pixels at depth 1.0 — sky/background with
    nothing rendered — are excluded up front), smooths it, and walks it
    near-to-far looking for the first *significant gap*: a local minimum
    whose count drops below ``valley_dip_ratio`` of the tallest peak seen
    so far, after at least ``valley_min_mass`` of the pixel mass has been
    covered (the paper's "noticeable gap between foreground and background
    depth values"). Falls back to Otsu's threshold when no gap exists
    (smooth unimodal distributions). Returns a threshold in (0, 1];
    pixels with ``depth <= threshold`` are foreground.
    """
    depth = _check_depth(depth)
    finite = depth[depth < 1.0]
    if finite.size == 0:
        return 1.0  # everything is background; keep all (degenerate frame)
    lo, hi = float(finite.min()), float(finite.max())
    if hi - lo < 1e-9:
        return hi  # single depth plane
    hist, edges = np.histogram(finite, bins=config.histogram_bins, range=(lo, hi))
    kernel = np.ones(config.valley_smoothing) / config.valley_smoothing
    smooth = np.convolve(hist.astype(np.float64), kernel, mode="same")
    cumulative = np.cumsum(hist)

    peak_seen = smooth[0]
    for i in range(1, len(smooth) - 1):
        peak_seen = max(peak_seen, smooth[i])
        is_local_min = smooth[i] <= smooth[i - 1] and smooth[i] <= smooth[i + 1]
        mass_before = cumulative[i]
        mass_after = finite.size - cumulative[i]
        # A genuine fg/bg gap separates two *substantial* clusters.
        if (
            is_local_min
            and mass_before > config.valley_min_mass * finite.size
            and mass_after > config.valley_min_mass * finite.size
            and smooth[i] < config.valley_dip_ratio * peak_seen
        ):
            return float(edges[i + 1])

    # Otsu fallback on the histogram.
    probs = hist.astype(np.float64) / hist.sum()
    centers = (edges[:-1] + edges[1:]) / 2.0
    omega = np.cumsum(probs)
    mu = np.cumsum(probs * centers)
    mu_total = mu[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma_b = (mu_total * omega - mu) ** 2 / (omega * (1.0 - omega))
    sigma_b[~np.isfinite(sigma_b)] = -1.0
    return float(edges[int(np.argmax(sigma_b)) + 1])


def extract_foreground(
    depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> tuple[np.ndarray, float]:
    """Foreground mask (bool) and the threshold used (Fig. 8 step-1)."""
    depth = _check_depth(depth)
    threshold = foreground_threshold(depth, config)
    return depth <= threshold, threshold


def center_weight_matrix(
    height: int, width: int, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> np.ndarray:
    """Gaussian center-bias weights in [0, center_weight] (Fig. 8 step-2)."""
    if height < 1 or width < 1:
        raise ValueError(f"invalid shape ({height}, {width})")
    ys = np.arange(height, dtype=np.float64) - (height - 1) / 2.0
    xs = np.arange(width, dtype=np.float64) - (width - 1) / 2.0
    sigma = config.center_sigma_frac * np.hypot(height, width)
    gauss = np.exp(-(ys[:, None] ** 2 + xs[None, :] ** 2) / (2.0 * sigma**2))
    return config.center_weight * gauss


def layer_bounds(
    weighted: np.ndarray, n_layers: int, mode: str = "quantile"
) -> np.ndarray:
    """Value boundaries dividing ``weighted`` into ``n_layers`` layers.

    ``mode="range"`` is the paper's literal even division of the value
    range; ``mode="quantile"`` (the default here) forms equal-population
    layers, which keeps the max-sum layer selection meaningful when depth
    is a continuum (ground planes) rather than discrete object clusters —
    see the RoIConfig docstring and the A1 ablation.
    """
    values = np.asarray(weighted, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot layer an empty value set")
    if mode == "range":
        lo = float(values.min())
        hi = float(values.max())
        if hi - lo < 1e-12:
            hi = lo + 1e-12
        return np.linspace(lo, hi, n_layers + 1)
    if mode == "quantile":
        bounds = np.quantile(values, np.linspace(0.0, 1.0, n_layers + 1))
        # Strictly increase degenerate bounds so searchsorted stays sane.
        for i in range(1, len(bounds)):
            if bounds[i] <= bounds[i - 1]:
                bounds[i] = bounds[i - 1] + 1e-12
        return bounds
    raise ValueError(f"unknown layer mode {mode!r}")


@dataclass(frozen=True)
class DepthPreprocessResult:
    """All intermediates of the Fig. 8 pipeline (useful for ablations)."""

    foreground_mask: np.ndarray
    foreground_threshold: float
    weight_matrix: np.ndarray
    weighted: np.ndarray
    layer_index: np.ndarray  # per-pixel layer id; -1 = background
    selected_layer: int
    processed: np.ndarray  # the map Algorithm 1 searches on

    @property
    def shape(self) -> tuple[int, int]:
        return self.processed.shape


def preprocess_depth(
    depth: np.ndarray, config: RoIConfig = DEFAULT_ROI_CONFIG
) -> DepthPreprocessResult:
    """Run the full Fig. 8 preprocessing pipeline on a depth buffer."""
    depth = _check_depth(depth)
    importance = nearness(depth)

    mask, threshold = extract_foreground(depth, config)
    weights = center_weight_matrix(*depth.shape, config=config)
    weighted = np.where(mask, importance + weights, 0.0)

    # Layering over foreground values only.
    fg_values = weighted[mask]
    if fg_values.size == 0:
        # Degenerate frame (all background): keep the weighted map as-is so
        # the search still resolves to the frame centre via the weights.
        weighted_all = importance + weights
        return DepthPreprocessResult(
            foreground_mask=mask,
            foreground_threshold=threshold,
            weight_matrix=weights,
            weighted=weighted_all,
            layer_index=np.zeros(depth.shape, dtype=np.int64),
            selected_layer=0,
            processed=weighted_all,
        )

    bounds = layer_bounds(fg_values, config.n_layers, mode=config.layer_mode)
    layer_index = np.full(depth.shape, -1, dtype=np.int64)
    layer_index[mask] = np.clip(
        np.searchsorted(bounds, weighted[mask], side="right") - 1,
        0,
        config.n_layers - 1,
    )

    sums = np.array(
        [weighted[layer_index == layer].sum() for layer in range(config.n_layers)]
    )
    selected = int(np.argmax(sums))
    processed = np.where(layer_index == selected, weighted, 0.0)

    return DepthPreprocessResult(
        foreground_mask=mask,
        foreground_threshold=threshold,
        weight_matrix=weights,
        weighted=weighted,
        layer_index=layer_index,
        selected_layer=selected,
        processed=processed,
    )
