"""Client-side RoI-assisted hybrid upscaling (paper Phase-2, Fig. 9).

The RoI crop goes through the DNN SR model (on the NPU in the paper); the
rest of the frame is bilinearly upscaled (mobile GPU ``GL_LINEAR``); the
upscaled RoI is then merged into the HR framebuffer at its scaled
coordinates. Both the merged pixels and the stage-time bookkeeping needed
by the latency/energy models are returned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import shaped
from ..sr.interpolate import bilinear
from ..sr.runner import SRRunner
from .roi_search import RoIBox

__all__ = ["HybridUpscaleResult", "RoIAssistedUpscaler"]


@dataclass(frozen=True)
class HybridUpscaleResult:
    """Merged HR frame plus the pixel counts driving the platform model."""

    frame: np.ndarray  # (H*s, W*s, 3)
    roi_hr: RoIBox  # RoI location on the HR frame
    roi_pixels: int  # LR pixels sent to the DNN path
    non_roi_pixels: int  # LR pixels sent to the bilinear path
    output_pixels: int  # HR pixels written


class RoIAssistedUpscaler:
    """Hybrid DNN-RoI + bilinear-background upscaler."""

    def __init__(self, runner: SRRunner) -> None:
        self.runner = runner
        self.scale = runner.scale

    @shaped(lr_frame="H W 3:n")
    def upscale(self, lr_frame: np.ndarray, roi: RoIBox) -> HybridUpscaleResult:
        """Upscale ``lr_frame`` with DNN SR inside ``roi``, bilinear outside."""
        lr_frame = np.asarray(lr_frame, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 RoI arithmetic
        if lr_frame.ndim != 3 or lr_frame.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) frame, got {lr_frame.shape}")
        height, width = lr_frame.shape[:2]
        if roi.x_end > width or roi.y_end > height:
            raise ValueError(
                f"RoI {roi} exceeds frame bounds {height}x{width}"
            )
        s = self.scale

        # Bilinear pass over the full frame models the GPU path: the GPU
        # upscales the non-RoI region; sampling the full grid and then
        # overwriting the RoI yields identical non-RoI pixels.
        hr = bilinear(lr_frame, height * s, width * s)

        roi_patch = roi.extract(lr_frame)
        roi_hr_patch = self.runner.upscale(roi_patch)
        roi_hr = roi.scaled(s)
        hr[roi_hr.y : roi_hr.y_end, roi_hr.x : roi_hr.x_end] = roi_hr_patch

        return HybridUpscaleResult(
            frame=hr,
            roi_hr=roi_hr,
            roi_pixels=roi.area,
            non_roi_pixels=height * width - roi.area,
            output_pixels=height * width * s * s,
        )
