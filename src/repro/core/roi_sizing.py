"""RoI window sizing from human physiology and device capability.

Implements Sec. IV-B1:

* **Minimum** desired RoI side = the foveal region projected onto the
  display — ``pixel_density * foveal_visual_diameter / scale_factor``
  (Fig. 7). For the S8 Tab (274 PPI, 30 cm viewing distance, 6 deg foveal
  angle, x2 upscale) this yields the paper's ~172 px.
* **Maximum** RoI side = largest window the client NPU upscales within
  16.66 ms, found by the step-1 device probe
  (:func:`repro.platform.benchmark.max_realtime_roi_side`) — ~300 px on
  both evaluation devices.

GameStreamSR picks the maximum (quality-maximizing) window as long as it
covers the foveal minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platform import calibration as cal
from ..platform.benchmark import max_realtime_roi_side
from ..platform.device import DeviceProfile

__all__ = [
    "foveal_diameter_cm",
    "foveal_diameter_inches",
    "min_roi_side_px",
    "RoIWindowPlan",
    "plan_roi_window",
]

_CM_PER_INCH = 2.54


def foveal_diameter_cm(
    viewing_distance_cm: float,
    visual_angle_deg: float = cal.FOVEAL_VISUAL_ANGLE_DEG,
) -> float:
    """Physical foveal diameter on screen: ``2 * d * tan(angle / 2)``."""
    if viewing_distance_cm <= 0:
        raise ValueError(f"viewing distance must be positive, got {viewing_distance_cm}")
    if not 0 < visual_angle_deg < 180:
        raise ValueError(f"visual angle out of range: {visual_angle_deg}")
    return 2.0 * viewing_distance_cm * np.tan(np.deg2rad(visual_angle_deg / 2.0))


def foveal_diameter_inches(
    viewing_distance_cm: float,
    visual_angle_deg: float = cal.FOVEAL_VISUAL_ANGLE_DEG,
) -> float:
    """Same as :func:`foveal_diameter_cm`, in inches (paper works in PPI)."""
    return foveal_diameter_cm(viewing_distance_cm, visual_angle_deg) / _CM_PER_INCH


def min_roi_side_px(
    device: DeviceProfile,
    scale_factor: int = 2,
    visual_angle_deg: float = cal.FOVEAL_VISUAL_ANGLE_DEG,
) -> int:
    """Minimum desired RoI side on the *low-resolution* frame (Fig. 7b).

    ``(pixel_density * foveal_visual_diameter) / scale_factor``.
    """
    if scale_factor < 1:
        raise ValueError(f"scale_factor must be >= 1, got {scale_factor}")
    diameter_in = foveal_diameter_inches(device.viewing_distance_cm, visual_angle_deg)
    return int(round(device.display.ppi * diameter_in / scale_factor))


@dataclass(frozen=True)
class RoIWindowPlan:
    """The negotiated RoI window for one (device, model, deadline) session."""

    device_name: str
    min_side: int  # foveal lower bound on the LR frame
    max_side: int  # NPU real-time upper bound on the LR frame
    side: int  # the side actually used
    reference_lr_height: int  # LR frame height the sizing assumed (720)

    @property
    def meets_foveal_minimum(self) -> bool:
        return self.side >= self.min_side

    def side_for_frame(self, lr_height: int) -> int:
        """Scale the window to a different LR frame geometry.

        Experiments render at reduced resolutions; keeping the window the
        same *fraction of frame height* preserves the paper's RoI-to-frame
        area ratio (300/720).
        """
        if lr_height < 1:
            raise ValueError(f"lr_height must be >= 1, got {lr_height}")
        side = int(round(self.side * lr_height / self.reference_lr_height))
        return max(2, min(side, lr_height))


def plan_roi_window(
    device: DeviceProfile,
    scale_factor: int = 2,
    deadline_ms: float = cal.REALTIME_DEADLINE_MS,
    reference_lr_height: int = 720,
) -> RoIWindowPlan:
    """Run the session-start sizing negotiation (Fig. 6 step-1).

    Chooses the largest real-time window; raises if the device cannot even
    cover the foveal minimum in real time (the paper's design assumes
    NPU-equipped clients where max >= min).
    """
    min_side = min_roi_side_px(device, scale_factor)
    max_side = max_realtime_roi_side(device, deadline_ms)
    if max_side < min_side:
        raise RuntimeError(
            f"device {device.name!r} cannot upscale the foveal minimum "
            f"({min_side}px) within {deadline_ms}ms (max real-time side "
            f"{max_side}px); DNN-based RoI SR is not viable on this client"
        )
    return RoIWindowPlan(
        device_name=device.name,
        min_side=min_side,
        max_side=max_side,
        side=max_side,
        reference_lr_height=reference_lr_height,
    )
