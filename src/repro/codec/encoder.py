"""GOP video encoder: I (reference) and P (non-reference) frames.

Mirrors the structure the paper assumes of the streaming codec (Sec. II):
each group of pictures (GOP) opens with an intra-coded reference frame
followed by motion-predicted non-reference frames. The encoder runs a
reconstruction loop (it decodes what it encodes) so prediction references
match the decoder exactly — no drift beyond quantization.

Pixel pipeline: RGB -> YCbCr, 4:2:0 chroma, per-plane 8x8 DCT +
frequency-weighted quantization, zigzag/RLE/Exp-Golomb entropy coding of
coefficients and motion vectors into a real byte payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from ..contracts import shaped
from .bitstream import BitWriter
from .blocks import block_grid_shape, split_blocks
from .color import rgb_to_ycbcr, subsample_chroma, upsample_chroma, ycbcr_to_rgb
from .entropy import encode_blocks
from .motion import compensate, estimate_motion
from .transform import DEFAULT_BLOCK, dequantize, forward_dct, inverse_dct, quantize

__all__ = ["EncodedFrame", "VideoEncoder", "PIXEL_SCALE"]

#: Planes are scaled to the 0-255 range the quantization tables assume.
PIXEL_SCALE = 255.0


@dataclass(frozen=True)
class EncodedFrame:
    """One compressed frame: metadata + entropy-coded payload."""

    frame_type: str  # "I" or "P"
    height: int
    width: int
    block: int
    quality: int
    payload: bytes
    #: Convenience copy of the luma-grid motion vectors (also in payload).
    motion_vectors: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    @property
    def size_bits(self) -> int:
        return len(self.payload) * 8

    @property
    def is_reference(self) -> bool:
        return self.frame_type == "I"


def _encode_plane(
    plane: np.ndarray, block: int, quality: int, writer: BitWriter
) -> np.ndarray:
    """Transform-code one residual/intra plane; returns its reconstruction."""
    blocks = split_blocks(plane, block)
    levels = quantize(forward_dct(blocks), quality)
    encode_blocks(levels, writer)
    recon_blocks = inverse_dct(dequantize(levels, quality))
    from .blocks import merge_blocks  # local to avoid a cycle at import time

    return merge_blocks(recon_blocks, plane.shape[0], plane.shape[1], block)


def _encode_motion(mv: np.ndarray, writer: BitWriter) -> None:
    """Signed Exp-Golomb coding of the (nby, nbx, 2) motion field."""
    from .entropy import signed_to_unsigned_array, write_exp_golomb_array

    write_exp_golomb_array(writer, signed_to_unsigned_array(mv.reshape(-1)))


class VideoEncoder:
    """Streaming encoder with a fixed GOP structure.

    Parameters
    ----------
    gop_size:
        Frames per GOP (1 reference + ``gop_size - 1`` non-reference). The
        paper's mobile experiments use 60 (Sec. V-B).
    quality:
        Quantizer quality in [1, 100].
    search_radius:
        Motion search window half-width in pixels.
    motion_method:
        ``"full"`` (exhaustive, exact — the default, used by every
        experiment driver for reproducibility) or ``"diamond"`` (the fast
        approximate diamond search; see DESIGN.md for the measured quality
        delta).
    """

    def __init__(
        self,
        gop_size: int = 60,
        quality: int = 60,
        block: int = DEFAULT_BLOCK,
        search_radius: int = 7,
        motion_method: str = "full",
    ) -> None:
        if gop_size < 1:
            raise ValueError(f"gop_size must be >= 1, got {gop_size}")
        if block < 2:
            raise ValueError(f"block must be >= 2, got {block}")
        if motion_method not in ("full", "diamond"):
            raise ValueError(f"unknown motion search method {motion_method!r}")
        self.gop_size = gop_size
        self.quality = quality
        self.block = block
        self.search_radius = search_radius
        self.motion_method = motion_method
        self._frame_index = 0
        self._recon_y: Optional[np.ndarray] = None
        self._recon_cb: Optional[np.ndarray] = None
        self._recon_cr: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget reconstruction state (next frame becomes an I-frame)."""
        self._frame_index = 0
        self._recon_y = self._recon_cb = self._recon_cr = None

    @property
    def next_is_reference(self) -> bool:
        return self._frame_index % self.gop_size == 0

    @shaped(rgb="H W 3:n")
    def encode_frame(self, rgb: np.ndarray) -> EncodedFrame:
        """Encode the next frame of the stream."""
        rgb = np.asarray(rgb, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB frame, got {rgb.shape}")
        h, w = rgb.shape[:2]
        y, cb, cr = rgb_to_ycbcr(rgb)
        y_p = y * PIXEL_SCALE - 128.0
        cb_p = subsample_chroma(cb) * PIXEL_SCALE
        cr_p = subsample_chroma(cr) * PIXEL_SCALE

        is_reference = self.next_is_reference
        writer = BitWriter()
        mv: Optional[np.ndarray] = None

        if is_reference or self._recon_y is None:
            frame_type = "I"
            recon_y = _encode_plane(y_p, self.block, self.quality, writer)
            recon_cb = _encode_plane(cb_p, self.block, self.quality, writer)
            recon_cr = _encode_plane(cr_p, self.block, self.quality, writer)
        else:
            frame_type = "P"
            mv = estimate_motion(
                y_p,
                self._recon_y,
                block=self.block,
                search_radius=self.search_radius,
                method=self.motion_method,
            )
            _encode_motion(mv, writer)
            pred_y = compensate(self._recon_y, mv, self.block)
            mv_c = np.round(mv / 2.0).astype(np.int64)
            chroma_block = max(self.block // 2, 2)
            pred_cb = compensate(self._recon_cb, mv_c, chroma_block)
            pred_cr = compensate(self._recon_cr, mv_c, chroma_block)
            recon_y = pred_y + _encode_plane(y_p - pred_y, self.block, self.quality, writer)
            recon_cb = pred_cb + _encode_plane(cb_p - pred_cb, self.block, self.quality, writer)
            recon_cr = pred_cr + _encode_plane(cr_p - pred_cr, self.block, self.quality, writer)

        self._recon_y = np.clip(recon_y, -128.0, 127.0)
        self._recon_cb = np.clip(recon_cb, -128.0, 127.0)
        self._recon_cr = np.clip(recon_cr, -128.0, 127.0)
        self._frame_index += 1

        return EncodedFrame(
            frame_type=frame_type,
            height=h,
            width=w,
            block=self.block,
            quality=self.quality,
            payload=writer.getvalue(),
            motion_vectors=mv,
        )

    def encode_sequence(self, frames: Iterable[np.ndarray]) -> List[EncodedFrame]:
        """Encode an iterable of RGB frames; resets state first."""
        self.reset()
        return [self.encode_frame(frame) for frame in frames]

    # ------------------------------------------------------------------
    def last_reconstruction(self) -> Optional[np.ndarray]:
        """The encoder-side reconstruction of the last frame (RGB)."""
        if self._recon_y is None:
            return None
        h, w = self._recon_y.shape
        y = (self._recon_y + 128.0) / PIXEL_SCALE
        cb = upsample_chroma(self._recon_cb / PIXEL_SCALE, h, w)
        cr = upsample_chroma(self._recon_cr / PIXEL_SCALE, h, w)
        return ycbcr_to_rgb(y, cb, cr)
