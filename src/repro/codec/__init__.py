"""Block-based video codec with GOP structure (VP9/H.264-class substitute).

Provides the motion vectors, residuals, and real bitstream sizes that the
NEMO baseline and the network model require. See DESIGN.md substitutions.
"""

from .blocks import block_grid_shape, merge_blocks, pad_to_blocks, split_blocks
from .color import rgb_to_ycbcr, subsample_chroma, upsample_chroma, ycbcr_to_rgb
from .decoder import DecodedFrame, VideoDecoder
from .encoder import EncodedFrame, VideoEncoder
from .motion import compensate, estimate_motion, upscale_motion_vectors
from .residual import block_energy, block_pixel_counts
from .transform import dequantize, forward_dct, inverse_dct, quant_matrix, quantize

__all__ = [
    "DecodedFrame",
    "EncodedFrame",
    "VideoDecoder",
    "VideoEncoder",
    "block_energy",
    "block_grid_shape",
    "block_pixel_counts",
    "compensate",
    "dequantize",
    "estimate_motion",
    "forward_dct",
    "inverse_dct",
    "merge_blocks",
    "pad_to_blocks",
    "quant_matrix",
    "quantize",
    "rgb_to_ycbcr",
    "split_blocks",
    "subsample_chroma",
    "upsample_chroma",
    "upscale_motion_vectors",
    "ycbcr_to_rgb",
]
