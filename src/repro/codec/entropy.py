"""Entropy coding of quantized transform coefficients.

Coefficients are zigzag-scanned per block, run-length coded
(zero-run, nonzero-level pairs with an end-of-block marker), and levels are
written with signed Exp-Golomb codes — the coefficient-coding recipe of
H.264's CAVLC family, simplified but producing a *real* bitstream whose
length feeds the network bandwidth model.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = [
    "zigzag_indices",
    "zigzag",
    "inverse_zigzag",
    "encode_blocks",
    "decode_blocks",
]


@lru_cache(maxsize=None)
def zigzag_indices(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/col index arrays visiting an n x n block in zigzag order."""
    order = sorted(
        ((r, c) for r in range(n) for c in range(n)),
        key=lambda rc: (rc[0] + rc[1], rc[0] if (rc[0] + rc[1]) % 2 else rc[1]),
    )
    rows = np.array([r for r, _ in order], dtype=np.intp)
    cols = np.array([c for _, c in order], dtype=np.intp)
    return rows, cols


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an (n, n) block in zigzag order."""
    rows, cols = zigzag_indices(block.shape[0])
    return block[rows, cols]


def inverse_zigzag(flat: np.ndarray, n: int) -> np.ndarray:
    """Rebuild an (n, n) block from its zigzag-ordered coefficients."""
    rows, cols = zigzag_indices(n)
    block = np.empty((n, n), dtype=flat.dtype)
    block[rows, cols] = flat
    return block


def _write_exp_golomb(writer: BitWriter, value: int) -> None:
    """Unsigned Exp-Golomb code of ``value`` >= 0."""
    code = value + 1
    n_bits = code.bit_length()
    writer.write_unary(n_bits - 1)
    writer.write_bits(code, n_bits - 1)  # suffix without the leading 1


def _read_exp_golomb(reader: BitReader) -> int:
    prefix = reader.read_unary()
    suffix = reader.read_bits(prefix)
    return (1 << prefix) + suffix - 1


def _signed_to_unsigned(value: int) -> int:
    return 2 * value - 1 if value > 0 else -2 * value


def _unsigned_to_signed(code: int) -> int:
    return (code + 1) // 2 if code % 2 else -(code // 2)


def encode_blocks(blocks: np.ndarray, writer: BitWriter) -> None:
    """Entropy-code quantized integer blocks of shape (N, n, n)."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(f"expected (N, n, n) blocks, got {blocks.shape}")
    n = blocks.shape[1]
    rows, cols = zigzag_indices(n)
    scanned = blocks[:, rows, cols].astype(np.int64)  # (N, n*n)
    for coeffs in scanned:
        nonzero = np.flatnonzero(coeffs)
        prev = -1
        for idx in nonzero:
            _write_exp_golomb(writer, int(idx - prev - 1))  # zero run
            _write_exp_golomb(writer, _signed_to_unsigned(int(coeffs[idx])))
            prev = int(idx)
        # End-of-block: a run that points past the final coefficient.
        _write_exp_golomb(writer, int(n * n - prev - 1))
        _write_exp_golomb(writer, 0)  # level 0 = EOB marker


def decode_blocks(reader: BitReader, n_blocks: int, n: int) -> np.ndarray:
    """Inverse of :func:`encode_blocks`; returns (n_blocks, n, n) ints."""
    rows, cols = zigzag_indices(n)
    out = np.zeros((n_blocks, n, n), dtype=np.int64)
    for b in range(n_blocks):
        flat = np.zeros(n * n, dtype=np.int64)
        pos = -1
        while True:
            run = _read_exp_golomb(reader)
            level_code = _read_exp_golomb(reader)
            if level_code == 0:  # EOB
                break
            pos += run + 1
            if pos >= n * n:
                raise ValueError("corrupt bitstream: coefficient index overflow")
            flat[pos] = _unsigned_to_signed(level_code)
        out[b][rows, cols] = flat
    return out
