"""Entropy coding of quantized transform coefficients.

Coefficients are zigzag-scanned per block, run-length coded
(zero-run, nonzero-level pairs with an end-of-block marker), and levels are
written with signed Exp-Golomb codes — the coefficient-coding recipe of
H.264's CAVLC family, simplified but producing a *real* bitstream whose
length feeds the network bandwidth model.

The encoder is fully vectorized: nonzero runs come from ``np.flatnonzero``
diffs over all blocks at once, Exp-Golomb codeword bit-lengths from
``np.frexp``, and the whole token sequence is packed to bytes in one
:meth:`~repro.codec.bitstream.BitWriter.write_codes` pass.  The bitstream
is byte-identical to the original token-at-a-time writer (asserted by the
tier-1 equivalence tests and ``benchmarks/bench_codec.py``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = [
    "zigzag_indices",
    "zigzag",
    "inverse_zigzag",
    "encode_blocks",
    "decode_blocks",
    "write_exp_golomb_array",
    "read_exp_golomb_array",
    "signed_to_unsigned_array",
    "unsigned_to_signed_array",
]


@lru_cache(maxsize=None)
def zigzag_indices(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/col index arrays visiting an n x n block in zigzag order."""
    order = sorted(
        ((r, c) for r in range(n) for c in range(n)),
        key=lambda rc: (rc[0] + rc[1], rc[0] if (rc[0] + rc[1]) % 2 else rc[1]),
    )
    rows = np.array([r for r, _ in order], dtype=np.intp)
    cols = np.array([c for _, c in order], dtype=np.intp)
    return rows, cols


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an (n, n) block in zigzag order."""
    rows, cols = zigzag_indices(block.shape[0])
    return block[rows, cols]


def inverse_zigzag(flat: np.ndarray, n: int) -> np.ndarray:
    """Rebuild an (n, n) block from its zigzag-ordered coefficients."""
    rows, cols = zigzag_indices(n)
    block = np.empty((n, n), dtype=flat.dtype)
    block[rows, cols] = flat
    return block


def _write_exp_golomb(writer: BitWriter, value: int) -> None:
    """Unsigned Exp-Golomb code of ``value`` >= 0."""
    code = value + 1
    n_bits = code.bit_length()
    writer.write_unary(n_bits - 1)
    writer.write_bits(code, n_bits - 1)  # suffix without the leading 1


def _read_exp_golomb(reader: BitReader) -> int:
    prefix = reader.read_unary()
    suffix = reader.read_bits(prefix)
    return (1 << prefix) + suffix - 1


def _signed_to_unsigned(value: int) -> int:
    return 2 * value - 1 if value > 0 else -2 * value


def _unsigned_to_signed(code: int) -> int:
    return (code + 1) // 2 if code % 2 else -(code // 2)


def _exp_golomb_codes(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(codeword, bit width) arrays for unsigned Exp-Golomb values.

    The codeword for v is the integer ``v + 1`` emitted over
    ``2*bit_length(v+1) - 1`` bits: ``bit_length - 1`` leading zeros (the
    unary prefix) followed by the binary digits of ``v + 1``.
    """
    codes = np.asarray(values, dtype=np.int64) + 1
    if codes.size and int(codes.min()) < 1:
        raise ValueError("Exp-Golomb values must be >= 0")
    if codes.size == 0:
        return codes, np.zeros(0, dtype=np.int64)
    if int(codes.max()) < (1 << 53):
        # frexp's exponent is the exact bit length for ints below 2**53.
        _, exp = np.frexp(codes.astype(np.float64))  # reprolint: disable=dtype-discipline -- exact: codes < 2**53
        n_bits = exp.astype(np.int64)
    else:
        n_bits = np.array([int(c).bit_length() for c in codes], dtype=np.int64)
    return codes, 2 * n_bits - 1


def write_exp_golomb_array(writer: BitWriter, values: np.ndarray) -> None:
    """Bulk unsigned Exp-Golomb coding of a 1-D array of values >= 0."""
    codes, widths = _exp_golomb_codes(values)
    writer.write_codes(codes, widths)


def read_exp_golomb_array(reader: BitReader, count: int) -> np.ndarray:
    """Read ``count`` unsigned Exp-Golomb values into an int64 array."""
    out = np.empty(count, dtype=np.int64)
    read_unary = reader.read_unary
    read_bits = reader.read_bits
    for i in range(count):
        prefix = read_unary()
        out[i] = (1 << prefix) + read_bits(prefix) - 1
    return out


def signed_to_unsigned_array(values: np.ndarray) -> np.ndarray:
    """Vectorized signed->unsigned Exp-Golomb value mapping."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values > 0, 2 * values - 1, -2 * values)


def unsigned_to_signed_array(codes: np.ndarray) -> np.ndarray:
    """Vectorized unsigned->signed Exp-Golomb value mapping."""
    codes = np.asarray(codes, dtype=np.int64)
    return np.where(codes % 2 == 1, (codes + 1) // 2, -(codes // 2))


def encode_blocks(blocks: np.ndarray, writer: BitWriter) -> None:
    """Entropy-code quantized integer blocks of shape (N, n, n).

    Token order per block — (zero-run, level) pairs for each nonzero in
    zigzag order, then an end-of-block (run past the last coefficient,
    level 0) — matches the original scalar writer bit for bit; the whole
    token sequence is assembled and packed vectorized.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(f"expected (N, n, n) blocks, got {blocks.shape}")
    n_blocks = blocks.shape[0]
    n = blocks.shape[1]
    nn = n * n
    rows, cols = zigzag_indices(n)
    flat = blocks[:, rows, cols].astype(np.int64).ravel()  # (N * n*n)

    nz = np.flatnonzero(flat)
    block_id = nz // nn
    pos = nz % nn
    # Zero-run before each nonzero: distance to the previous nonzero in the
    # same block (or to the block start for the first one).
    prev_pos = np.empty_like(pos)
    prev_pos[:1] = 0
    prev_pos[1:] = pos[:-1]
    same_block = np.empty(block_id.shape, dtype=bool)
    same_block[:1] = False
    same_block[1:] = block_id[1:] == block_id[:-1]
    runs = np.where(same_block, pos - prev_pos - 1, pos)
    level_codes = signed_to_unsigned_array(flat[nz])

    # Scatter (run, level) token pairs, then per-block EOB pairs, into the
    # exact interleaved order the scalar writer produced.
    nnz = np.bincount(block_id, minlength=n_blocks)
    first = np.concatenate(([0], np.cumsum(nnz)[:-1]))
    token_start = np.concatenate(([0], np.cumsum(2 * nnz + 2)[:-1]))
    values = np.zeros(2 * nz.size + 2 * n_blocks, dtype=np.int64)
    idx = token_start[block_id] + 2 * (np.arange(nz.size, dtype=np.int64) - first[block_id])
    values[idx] = runs
    values[idx + 1] = level_codes
    last_pos = np.full(n_blocks, -1, dtype=np.int64)
    has_nz = nnz > 0
    last_pos[has_nz] = pos[first[has_nz] + nnz[has_nz] - 1]
    eob_idx = token_start + 2 * nnz
    values[eob_idx] = nn - last_pos - 1  # run pointing past the final coeff
    values[eob_idx + 1] = 0  # level 0 = EOB marker

    write_exp_golomb_array(writer, values)


def decode_blocks(reader: BitReader, n_blocks: int, n: int) -> np.ndarray:
    """Inverse of :func:`encode_blocks`; returns (n_blocks, n, n) ints."""
    rows, cols = zigzag_indices(n)
    out = np.zeros((n_blocks, n, n), dtype=np.int64)
    nn = n * n
    read_unary = reader.read_unary
    read_bits = reader.read_bits
    for b in range(n_blocks):
        flat = np.zeros(nn, dtype=np.int64)
        pos = -1
        while True:
            prefix = read_unary()
            run = (1 << prefix) + read_bits(prefix) - 1
            prefix = read_unary()
            level_code = (1 << prefix) + read_bits(prefix) - 1
            if level_code == 0:  # EOB
                break
            pos += run + 1
            if pos >= nn:
                raise ValueError("corrupt bitstream: coefficient index overflow")
            flat[pos] = _unsigned_to_signed(level_code)
        out[b][rows, cols] = flat
    return out
