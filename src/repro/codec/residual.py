"""Per-block residual-energy summaries (summed-area-table block sums).

The decoded residual localizes where a P-frame actually changed relative
to its motion-compensated prediction: static regions quantize to an
exactly-zero residual, moving or newly-textured regions do not. Both the
GOP-reuse SR cache (:mod:`repro.sr.gop_reuse`) and the SR-integrated
decoder's RoI-guided residual path consume the same per-block summary,
so it is computed once here (and cached per block size on
:class:`~repro.codec.decoder.DecodedFrame`).

The block sums come from one exclusive summed-area table over the squared
residual — a single pass over the frame regardless of block size, the
same integral-image idiom the motion estimator and the RoI server use.
"""

from __future__ import annotations

import numpy as np

from ..contracts import shaped
from .blocks import block_grid_shape

__all__ = ["block_energy", "block_pixel_counts"]


def _block_edges(length: int, block: int) -> np.ndarray:
    """SAT sample positions for a ragged block grid over ``length`` pixels."""
    n = block_grid_shape(length, 1, block)[0]
    return np.minimum(np.arange(n + 1, dtype=np.int64) * block, length)


@shaped(residual="H W 3:f64|H W:f64")
def block_energy(residual: np.ndarray, block: int) -> np.ndarray:
    """Sum of squared residual per (block x block) tile, channels summed.

    Returns a ``(nby, nbx)`` float64 grid on the same ceil-division block
    grid the codec uses. Edge tiles are ragged (they sum fewer pixels);
    normalize with :func:`block_pixel_counts` to compare against a
    per-pixel threshold.
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    sq = residual * residual
    if sq.ndim == 3:
        sq = sq.sum(axis=2)
    h, w = sq.shape
    sat = np.zeros((h + 1, w + 1), dtype=np.float64)
    np.cumsum(sq, axis=0, out=sat[1:, 1:])
    np.cumsum(sat[1:, 1:], axis=1, out=sat[1:, 1:])
    ys = _block_edges(h, block)
    xs = _block_edges(w, block)
    corners = sat[np.ix_(ys, xs)]
    sums = (
        corners[1:, 1:] - corners[:-1, 1:] - corners[1:, :-1] + corners[:-1, :-1]
    )
    # Corner cancellation can leave a ~1e-16-scale negative value on an
    # exactly-zero block; a sum of squares is >= 0 by definition, and the
    # ``energy >= threshold * pixels`` mask relies on zero staying zero.
    return np.maximum(sums, 0.0)


def block_pixel_counts(height: int, width: int, block: int) -> np.ndarray:
    """Pixels covered by each tile of the ragged ``(nby, nbx)`` block grid."""
    if height < 1 or width < 1:
        raise ValueError(f"frame dims must be positive, got {height}x{width}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    heights = np.diff(_block_edges(height, block))
    widths = np.diff(_block_edges(width, block))
    return heights[:, None] * widths[None, :]
