"""RGB <-> YCbCr conversion and 4:2:0 chroma resampling (BT.601 full range)."""

from __future__ import annotations

import numpy as np

from ..sr.interpolate import bilinear

__all__ = ["rgb_to_ycbcr", "ycbcr_to_rgb", "subsample_chroma", "upsample_chroma"]

_FORWARD = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_INVERSE = np.linalg.inv(_FORWARD)


def rgb_to_ycbcr(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(H, W, 3) RGB in [0, 1] -> (Y, Cb, Cr) planes, Y in [0,1], C in [-.5,.5]."""
    rgb = np.asarray(rgb, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB, got {rgb.shape}")
    ycc = rgb @ _FORWARD.T
    return ycc[..., 0], ycc[..., 1], ycc[..., 2]


def ycbcr_to_rgb(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr`, clipped to [0, 1]."""
    ycc = np.stack([y, cb, cr], axis=-1)
    return np.clip(ycc @ _INVERSE.T, 0.0, 1.0)


def subsample_chroma(plane: np.ndarray) -> np.ndarray:
    """2x2 average-pool (4:2:0 subsampling); odd dims are edge-padded."""
    plane = np.asarray(plane, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
    h, w = plane.shape
    if h % 2 or w % 2:
        plane = np.pad(plane, ((0, h % 2), (0, w % 2)), mode="edge")
        h, w = plane.shape
    return plane.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_chroma(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear chroma upsampling back to luma resolution."""
    return bilinear(plane, out_h, out_w)
