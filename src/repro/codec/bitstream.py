"""Bit-level I/O for the codec's entropy-coded payloads.

:class:`BitWriter` keeps its original bit-at-a-time API but adds
:meth:`BitWriter.write_codes`, a bulk append that assembles a whole batch
of MSB-first codewords in one numpy pass (bit scatter + ``np.packbits``),
producing byte-identical output to the equivalent ``write_bits`` loop.
:class:`BitReader` buffers the byte string into a rolling integer window
(refilled eight bytes at a time) so ``read_bits``/``read_unary`` cost one
Python-level operation per *call* instead of one per *bit*.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._n_bits = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._n_bits += 1
        if self._n_bits == 8:
            self._bytes.append(self._accumulator)
            self._accumulator = 0
            self._n_bits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write the ``count`` low bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """``value`` zeros followed by a one (prefix of Exp-Golomb)."""
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def write_codes(self, values: np.ndarray, widths: np.ndarray) -> None:
        """Bulk-append codewords: the ``widths[i]`` low bits of ``values[i]``.

        Equivalent to ``write_bits(values[i], widths[i])`` for each i, but
        the whole batch is scattered into one bit array and packed with a
        single ``np.packbits`` pass.  Works at any bit offset: pending
        accumulator bits are prepended and the new tail (< 8 bits) is
        carried back into the accumulator.
        """
        values = np.asarray(values, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.int64)
        if values.shape != widths.shape or values.ndim != 1:
            raise ValueError(
                f"values/widths must be matching 1-D arrays, got "
                f"{values.shape} vs {widths.shape}"
            )
        if widths.size and int(widths.min()) < 0:
            raise ValueError("widths must be >= 0")
        pending = self._n_bits
        total = pending + int(widths.sum())
        bits = np.zeros(total, dtype=np.uint8)
        for i in range(pending):  # < 8 bits
            bits[pending - 1 - i] = (self._accumulator >> i) & 1
        ends = pending + np.cumsum(widths)
        max_width = int(widths.max()) if widths.size else 0
        for k in range(max_width):
            sel = widths > k
            bits[ends[sel] - 1 - k] = (values[sel] >> k) & 1
        n_full = total // 8
        if n_full:
            self._bytes += np.packbits(bits[: n_full * 8]).tobytes()
        self._accumulator = 0
        self._n_bits = 0
        for bit in bits[n_full * 8 :]:  # < 8 bits
            self.write_bit(int(bit))

    def getvalue(self) -> bytes:
        """Flushed byte string (zero-padded to a byte boundary)."""
        out = bytearray(self._bytes)
        if self._n_bits:
            out.append(self._accumulator << (8 - self._n_bits))
        return bytes(out)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return len(self._bytes) * 8 + self._n_bits


class BitReader:
    """MSB-first reader over a byte string, buffered for fast decode.

    Upcoming bits live in an integer window (``_buf`` holding the low
    ``_buf_bits`` bits), refilled up to eight bytes at a time, so unary
    runs are counted with one ``bit_length`` call instead of a per-bit
    loop.  The public API and EOF behaviour match the original unbuffered
    reader.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._total_bits = len(data) * 8
        self._pos = 0  # bits consumed so far
        self._buf = 0
        self._buf_bits = 0
        self._byte_pos = 0  # next byte to load into the buffer

    def _fill(self) -> bool:
        chunk = self._data[self._byte_pos : self._byte_pos + 8]
        if not chunk:
            return False
        self._buf = (self._buf << (8 * len(chunk))) | int.from_bytes(chunk, "big")
        self._buf_bits += 8 * len(chunk)
        self._byte_pos += len(chunk)
        return True

    def read_bit(self) -> int:
        if self._buf_bits == 0 and not self._fill():
            raise EOFError("bitstream exhausted")
        self._buf_bits -= 1
        self._pos += 1
        bit = (self._buf >> self._buf_bits) & 1
        self._buf &= (1 << self._buf_bits) - 1
        return bit

    def read_bits(self, count: int) -> int:
        while self._buf_bits < count:
            if not self._fill():
                raise EOFError("bitstream exhausted")
        self._buf_bits -= count
        self._pos += count
        value = self._buf >> self._buf_bits
        self._buf &= (1 << self._buf_bits) - 1
        return value

    def read_unary(self) -> int:
        count = 0
        while True:
            if self._buf_bits == 0 and not self._fill():
                raise EOFError("bitstream exhausted")
            if self._buf == 0:
                count += self._buf_bits
                self._pos += self._buf_bits
                self._buf_bits = 0
                continue
            top = self._buf.bit_length()
            zeros = self._buf_bits - top
            count += zeros
            self._buf_bits = top - 1  # consume the zeros and the 1
            self._buf &= (1 << self._buf_bits) - 1
            self._pos += zeros + 1
            return count

    @property
    def bits_remaining(self) -> int:
        return self._total_bits - self._pos
