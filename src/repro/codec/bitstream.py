"""Bit-level I/O for the codec's entropy-coded payloads."""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._n_bits = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._n_bits += 1
        if self._n_bits == 8:
            self._bytes.append(self._accumulator)
            self._accumulator = 0
            self._n_bits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write the ``count`` low bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """``value`` zeros followed by a one (prefix of Exp-Golomb)."""
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def getvalue(self) -> bytes:
        """Flushed byte string (zero-padded to a byte boundary)."""
        out = bytearray(self._bytes)
        if self._n_bits:
            out.append(self._accumulator << (8 - self._n_bits))
        return bytes(out)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return len(self._bytes) * 8 + self._n_bits


class BitReader:
    """MSB-first reader over a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read_bit(self) -> int:
        byte_idx, bit_idx = divmod(self._pos, 8)
        if byte_idx >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_idx] >> (7 - bit_idx)) & 1

    def read_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos
