"""DCT transform and quantization for 8x8 (or n x n) residual blocks.

Quantization uses a JPEG-style frequency-weighted step matrix scaled by a
quality parameter in [1, 100] — coarse at low quality, near-lossless at
high quality — which gives the encoder a realistic rate/distortion knob.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.fft import dctn, idctn

__all__ = [
    "forward_dct",
    "inverse_dct",
    "quantize",
    "dequantize",
    "quant_matrix",
    "DEFAULT_BLOCK",
]

DEFAULT_BLOCK = 8

# JPEG Annex K luminance table (the de-facto base for frequency weighting).
_JPEG_LUMA = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


@lru_cache(maxsize=None)
def quant_matrix(quality: int, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Frequency-weighted quantization steps for ``quality`` in [1, 100]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    if block == 8:
        base = _JPEG_LUMA
    else:
        # Resample the 8x8 table to the requested block size.
        ys = np.linspace(0, 7, block)
        xs = np.linspace(0, 7, block)
        yi = np.clip(ys.astype(np.int64), 0, 6)
        xi = np.clip(xs.astype(np.int64), 0, 6)
        fy = (ys - yi)[:, None]
        fx = (xs - xi)[None, :]
        base = (
            _JPEG_LUMA[np.ix_(yi, xi)] * (1 - fy) * (1 - fx)
            + _JPEG_LUMA[np.ix_(yi + 1, xi)] * fy * (1 - fx)
            + _JPEG_LUMA[np.ix_(yi, xi + 1)] * (1 - fy) * fx
            + _JPEG_LUMA[np.ix_(yi + 1, xi + 1)] * fy * fx
        )
    steps = np.floor((base * scale + 50.0) / 100.0)
    steps = np.clip(steps, 1.0, 255.0)
    steps.setflags(write=False)
    return steps


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal 2-D DCT-II over the last two axes of (N, n, n)."""
    return dctn(blocks, axes=(-2, -1), norm="ortho")


def inverse_dct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct`."""
    return idctn(coeffs, axes=(-2, -1), norm="ortho")


def quantize(coeffs: np.ndarray, quality: int) -> np.ndarray:
    """Round DCT coefficients to integer steps (pixel domain scaled 0-255)."""
    steps = quant_matrix(quality, coeffs.shape[-1])
    return np.round(coeffs / steps).astype(np.int64)


def dequantize(levels: np.ndarray, quality: int) -> np.ndarray:
    """Reconstruct coefficients from quantized integer levels."""
    steps = quant_matrix(quality, levels.shape[-1])
    return levels.astype(np.float64) * steps  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
