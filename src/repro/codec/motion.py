"""Block-matching motion estimation and compensation.

Full-search block matching over a square window, vectorized across the
whole frame per candidate offset (one shifted-difference + blockwise SAD
reduction per offset), which makes exhaustive search affordable in numpy.
The estimated per-block motion vectors and the prediction residual are the
codec internals NEMO's non-reference reconstruction consumes (Sec. II-A
of the paper).
"""

from __future__ import annotations

import numpy as np

from .blocks import block_grid_shape, pad_to_blocks

__all__ = ["estimate_motion", "compensate", "upscale_motion_vectors"]


def _shift_frame(frame: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift with edge replication: result[y, x] = frame[y + dy, x + dx]."""
    h, w = frame.shape
    ys = np.clip(np.arange(h) + dy, 0, h - 1)
    xs = np.clip(np.arange(w) + dx, 0, w - 1)
    return frame[np.ix_(ys, xs)]


def estimate_motion(
    current: np.ndarray,
    reference: np.ndarray,
    block: int = 8,
    search_radius: int = 7,
) -> np.ndarray:
    """Per-block motion vectors (nby, nbx, 2) as (dy, dx) into ``reference``.

    A block at grid position (by, bx) is predicted from the reference
    region starting at ``(by*block + dy, bx*block + dx)``.
    """
    current = np.asarray(current, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if current.shape != reference.shape:
        raise ValueError(
            f"frame shape mismatch: {current.shape} vs {reference.shape}"
        )
    if current.ndim != 2:
        raise ValueError(f"expected 2-D planes, got {current.shape}")
    if search_radius < 0:
        raise ValueError(f"search_radius must be >= 0, got {search_radius}")

    h, w = current.shape
    nby, nbx = block_grid_shape(h, w, block)
    cur = pad_to_blocks(current, block)
    ref = pad_to_blocks(reference, block)
    ph, pw = cur.shape

    best_sad = np.full((nby, nbx), np.inf)
    best_mv = np.zeros((nby, nbx, 2), dtype=np.int64)

    offsets = [
        (dy, dx)
        for dy in range(-search_radius, search_radius + 1)
        for dx in range(-search_radius, search_radius + 1)
    ]
    # Zero-motion first so ties (flat regions) prefer no motion.
    offsets.sort(key=lambda o: (abs(o[0]) + abs(o[1]), o))

    for dy, dx in offsets:
        shifted = _shift_frame(ref, dy, dx)
        sad = (
            np.abs(cur - shifted)
            .reshape(nby, block, nbx, block)
            .sum(axis=(1, 3))
        )
        better = sad < best_sad - 1e-12
        best_sad = np.where(better, sad, best_sad)
        best_mv[better] = (dy, dx)
    return best_mv


def compensate(
    reference: np.ndarray, motion_vectors: np.ndarray, block: int = 8
) -> np.ndarray:
    """Build the motion-compensated prediction of the current frame."""
    reference = np.asarray(reference, dtype=np.float64)
    h, w = reference.shape
    nby, nbx = block_grid_shape(h, w, block)
    if motion_vectors.shape != (nby, nbx, 2):
        raise ValueError(
            f"expected motion vectors {(nby, nbx, 2)}, got {motion_vectors.shape}"
        )
    ref = pad_to_blocks(reference, block)
    ph, pw = ref.shape
    predicted = np.empty_like(ref)
    for by in range(nby):
        for bx in range(nbx):
            dy, dx = motion_vectors[by, bx]
            y0 = by * block + int(dy)
            x0 = bx * block + int(dx)
            ys = np.clip(np.arange(y0, y0 + block), 0, ph - 1)
            xs = np.clip(np.arange(x0, x0 + block), 0, pw - 1)
            predicted[
                by * block : (by + 1) * block, bx * block : (bx + 1) * block
            ] = ref[np.ix_(ys, xs)]
    return predicted[:h, :w]


def upscale_motion_vectors(
    motion_vectors: np.ndarray, factor: int
) -> np.ndarray:
    """Scale motion vectors for an upscaled frame (NEMO's MV upscaling).

    The block grid keeps the same number of blocks (each block now covers
    ``block*factor`` pixels) and displacements scale by ``factor``.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return np.asarray(motion_vectors) * factor
