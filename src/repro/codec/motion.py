"""Block-matching motion estimation and compensation.

Two search modes share one public entry point:

- ``method="full"`` (default): exhaustive full search over the square
  window, exact but pruned.  A multilevel successive-elimination bound
  (|sum(cur) - sum(ref)| <= SAD, evaluated on half-block sub-sums pulled
  from one integral image of the padded reference) masks out blocks whose
  best-so-far SAD provably cannot be beaten at an offset, so the expensive
  per-block SAD is gathered only for the still-contested blocks.  The
  result is *exactly* the exhaustive-search motion field: a block is
  skipped only when the lower bound shows ``sad < best_sad`` is impossible.
- ``method="diamond"``: the classic large/small diamond search (LDSP +
  SDSP refinement), vectorized across all blocks at once.  Much cheaper,
  approximate — experiment drivers keep full search for reproducibility
  and opt into diamond explicitly (see DESIGN.md).

Comparisons use exact ``sad < best_sad`` (no float epsilon): SADs of
uint8-range planes are sums of at most a few thousand exactly-representable
values, and candidate offsets are visited nearest-first, so exact ties keep
the smallest displacement.  The estimated per-block motion vectors and the
prediction residual are the codec internals NEMO's non-reference
reconstruction consumes (Sec. II-A of the paper).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .blocks import block_grid_shape, pad_to_blocks

__all__ = ["estimate_motion", "compensate", "upscale_motion_vectors"]

#: Guard band for the successive-elimination bound: sub-block sums come
#: from an integral image whose cumulative float64 rounding error is far
#: below this, so ``lb - _SEA_SLACK >= best_sad`` provably implies the
#: exact SAD cannot win.  Pruning efficiency is unaffected (real SAD gaps
#: are orders of magnitude larger).
_SEA_SLACK = 1e-3


def _shift_frame(frame: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift with edge replication: result[y, x] = frame[y + dy, x + dx]."""
    h, w = frame.shape
    ys = np.clip(np.arange(h, dtype=np.int64) + dy, 0, h - 1)
    xs = np.clip(np.arange(w, dtype=np.int64) + dx, 0, w - 1)
    return frame[np.ix_(ys, xs)]


@lru_cache(maxsize=None)
def _search_offsets(search_radius: int) -> tuple[tuple[int, int], ...]:
    """All (dy, dx) in the window, nearest-first (zero motion leads).

    Hoisted out of :func:`estimate_motion` and cached per radius — the
    list is identical for every frame of a session.
    """
    offsets = [
        (dy, dx)
        for dy in range(-search_radius, search_radius + 1)
        for dx in range(-search_radius, search_radius + 1)
    ]
    offsets.sort(key=lambda o: (abs(o[0]) + abs(o[1]), o))
    return tuple(offsets)


def _integral_image(plane: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero border row/column."""
    ii = np.zeros((plane.shape[0] + 1, plane.shape[1] + 1), dtype=np.float64)
    np.cumsum(plane, axis=0, out=ii[1:, 1:])
    np.cumsum(ii[1:, 1:], axis=1, out=ii[1:, 1:])
    return ii


def _estimate_full(
    cur: np.ndarray, ref: np.ndarray, block: int, radius: int
) -> np.ndarray:
    """Exhaustive search with multilevel successive-elimination pruning."""
    ph, pw = cur.shape
    nby, nbx = ph // block, pw // block
    rp = np.pad(ref, radius, mode="edge") if radius else ref

    # Sliding sub-block sums of the padded reference at every position,
    # from one integral image; sub-block sums of the current frame on its
    # block grid.  ``sub`` divides ``block`` so both tile exactly.
    sub = block // 2 if block % 2 == 0 and block >= 4 else block
    spb = block // sub
    ii = _integral_image(rp)
    ref_sub_all = ii[sub:, sub:] - ii[:-sub, sub:] - ii[sub:, :-sub] + ii[:-sub, :-sub]
    nsy, nsx = ph // sub, pw // sub
    cur_sub = cur.reshape(nsy, sub, nsx, sub).sum(axis=(1, 3))

    cur_blocks = cur.reshape(nby, block, nbx, block).transpose(0, 2, 1, 3).copy()
    best_sad = np.full((nby, nbx), np.inf, dtype=np.float64)
    best_mv = np.zeros((nby, nbx, 2), dtype=np.int64)
    taps = np.arange(block, dtype=np.int64)
    lb_buf = np.empty((nsy, nsx), dtype=np.float64)

    for dy, dx in _search_offsets(radius):
        y0 = radius + dy
        x0 = radius + dx
        # Lower bound per block: sum of |cur sub-sum - ref sub-sum| over
        # the block's sub-blocks (triangle inequality: <= true SAD).
        np.subtract(
            cur_sub,
            ref_sub_all[y0 : y0 + nsy * sub : sub, x0 : x0 + nsx * sub : sub],
            out=lb_buf,
        )
        np.abs(lb_buf, out=lb_buf)
        lb = lb_buf.reshape(nby, spb, nbx, spb).sum(axis=(1, 3))
        bys, bxs = np.nonzero(lb - _SEA_SLACK < best_sad)
        if bys.size == 0:
            continue
        # Gather the contested reference windows in one fancy index and
        # evaluate their true SADs.
        iy = (bys * block + y0)[:, None] + taps
        ix = (bxs * block + x0)[:, None] + taps
        ref_win = rp[iy[:, :, None], ix[:, None, :]]
        sad = np.abs(cur_blocks[bys, bxs] - ref_win).sum(axis=(1, 2))
        sel = sad < best_sad[bys, bxs]
        if sel.any():
            bys, bxs = bys[sel], bxs[sel]
            best_sad[bys, bxs] = sad[sel]
            best_mv[bys, bxs] = (dy, dx)
    return best_mv


#: Large/small diamond search patterns, nearest-first so exact ties keep
#: the smaller displacement (matching full search's preference).
_LDSP = ((0, 0), (-1, -1), (-1, 1), (1, -1), (1, 1), (-2, 0), (0, -2), (0, 2), (2, 0))
_SDSP = ((0, 0), (-1, 0), (0, -1), (0, 1), (1, 0))


def _estimate_diamond(
    cur: np.ndarray, ref: np.ndarray, block: int, radius: int
) -> np.ndarray:
    """Diamond search (LDSP until the centre wins, then one SDSP pass)."""
    ph, pw = cur.shape
    nby, nbx = ph // block, pw // block
    rp = np.pad(ref, radius, mode="edge") if radius else ref
    cur_blocks = cur.reshape(nby, block, nbx, block).transpose(0, 2, 1, 3).copy()
    taps = np.arange(block, dtype=np.int64)

    def sad_at(my: np.ndarray, mx: np.ndarray, rows, cols) -> np.ndarray:
        iy = (rows * block + my + radius)[:, None] + taps
        ix = (cols * block + mx + radius)[:, None] + taps
        win = rp[iy[:, :, None], ix[:, None, :]]
        return np.abs(cur_blocks[rows, cols] - win).sum(axis=(1, 2))

    center = np.zeros((nby, nbx, 2), dtype=np.int64)
    rows, cols = np.divmod(np.arange(nby * nbx, dtype=np.int64), nbx)
    best = sad_at(center[rows, cols, 0], center[rows, cols, 1], rows, cols)
    best = best.reshape(nby, nbx)

    def refine(pattern, rows, cols) -> np.ndarray:
        """Move each (row, col) block to its best pattern point; return moved mask.

        All pattern points are evaluated around the *same* (frozen) centre
        and the argmin taken — nearest-first pattern order plus strict
        comparison keeps the smaller displacement on exact ties.
        """
        cur_best = best[rows, cols].copy()
        base_y = center[rows, cols, 0]
        base_x = center[rows, cols, 1]
        new_y = base_y.copy()
        new_x = base_x.copy()
        moved = np.zeros(rows.size, dtype=bool)
        for dy, dx in pattern:
            if dy == 0 and dx == 0:
                continue
            cy = np.clip(base_y + dy, -radius, radius)
            cx = np.clip(base_x + dx, -radius, radius)
            sad = sad_at(cy, cx, rows, cols)
            sel = sad < cur_best
            if sel.any():
                cur_best[sel] = sad[sel]
                new_y[sel] = cy[sel]
                new_x[sel] = cx[sel]
                moved |= sel
        best[rows, cols] = cur_best
        center[rows, cols, 0] = new_y
        center[rows, cols, 1] = new_x
        return moved

    if radius > 0:
        active_rows, active_cols = rows, cols
        for _ in range(2 * radius + 2):
            moved = refine(_LDSP, active_rows, active_cols)
            if not moved.any():
                break
            active_rows = active_rows[moved]
            active_cols = active_cols[moved]
        refine(_SDSP, rows, cols)
    return center


def estimate_motion(
    current: np.ndarray,
    reference: np.ndarray,
    block: int = 8,
    search_radius: int = 7,
    method: str = "full",
) -> np.ndarray:
    """Per-block motion vectors (nby, nbx, 2) as (dy, dx) into ``reference``.

    A block at grid position (by, bx) is predicted from the reference
    region starting at ``(by*block + dy, bx*block + dx)``.  ``method`` is
    ``"full"`` (exhaustive, exact, pruned) or ``"diamond"`` (fast,
    approximate).
    """
    current = np.asarray(current, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
    reference = np.asarray(reference, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
    if current.shape != reference.shape:
        raise ValueError(
            f"frame shape mismatch: {current.shape} vs {reference.shape}"
        )
    if current.ndim != 2:
        raise ValueError(f"expected 2-D planes, got {current.shape}")
    if search_radius < 0:
        raise ValueError(f"search_radius must be >= 0, got {search_radius}")
    if method not in ("full", "diamond"):
        raise ValueError(f"unknown motion search method {method!r}")

    cur = pad_to_blocks(current, block)
    ref = pad_to_blocks(reference, block)
    if method == "diamond":
        return _estimate_diamond(cur, ref, block, search_radius)
    return _estimate_full(cur, ref, block, search_radius)


def compensate(
    reference: np.ndarray, motion_vectors: np.ndarray, block: int = 8
) -> np.ndarray:
    """Build the motion-compensated prediction of the current frame.

    One fancy-indexed gather over the whole plane: each output pixel reads
    ``ref[clip(y + dy), clip(x + dx)]`` with its block's displacement
    broadcast across the block — bit-identical to the per-block loop it
    replaces.
    """
    reference = np.asarray(reference, dtype=np.float64)  # reprolint: disable=dtype-discipline -- frozen f64 codec arithmetic
    h, w = reference.shape
    nby, nbx = block_grid_shape(h, w, block)
    if motion_vectors.shape != (nby, nbx, 2):
        raise ValueError(
            f"expected motion vectors {(nby, nbx, 2)}, got {motion_vectors.shape}"
        )
    ref = pad_to_blocks(reference, block)
    ph, pw = ref.shape
    mv = np.asarray(motion_vectors, dtype=np.int64)
    dy = np.repeat(np.repeat(mv[:, :, 0], block, axis=0), block, axis=1)
    dx = np.repeat(np.repeat(mv[:, :, 1], block, axis=0), block, axis=1)
    ys = np.clip(np.arange(ph, dtype=np.int64)[:, None] + dy, 0, ph - 1)
    xs = np.clip(np.arange(pw, dtype=np.int64)[None, :] + dx, 0, pw - 1)
    return ref[ys, xs][:h, :w]


def upscale_motion_vectors(
    motion_vectors: np.ndarray, factor: int
) -> np.ndarray:
    """Scale motion vectors for an upscaled frame (NEMO's MV upscaling).

    The block grid keeps the same number of blocks (each block now covers
    ``block*factor`` pixels) and displacements scale by ``factor``.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return np.asarray(motion_vectors) * factor
