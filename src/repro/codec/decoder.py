"""GOP video decoder exposing the internals NEMO relies on.

:class:`VideoDecoder` reconstructs RGB frames purely from
:class:`~repro.codec.encoder.EncodedFrame` payloads. Besides the decoded
image, each :class:`DecodedFrame` carries the parsed motion-vector field
and the decoded residual (as an RGB-space image), because the NEMO
baseline (paper Sec. II-A / V-A) reconstructs upscaled non-reference
frames from exactly those codec internals — the reason it needs a software
decoder in the first place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..contracts import shaped
from .bitstream import BitReader
from .blocks import block_grid_shape, merge_blocks
from .color import upsample_chroma, ycbcr_to_rgb
from .encoder import PIXEL_SCALE, EncodedFrame
from .entropy import decode_blocks, read_exp_golomb_array, unsigned_to_signed_array
from .motion import compensate
from .residual import block_energy
from .transform import dequantize, inverse_dct

__all__ = ["DecodedFrame", "VideoDecoder"]


class DecodedFrame:
    """A reconstructed frame plus the codec internals used to build it.

    ``prediction_rgb`` / ``residual_rgb`` are **lazy**: the decoder stores
    the motion-compensated prediction planes and the RGB conversion +
    subtraction run on first property access (then cache). Most client
    designs never read them (only NEMO's reconstruction and the GOP-reuse
    paths do), so the default decode loop skips two full chroma-upsampled
    color conversions per P-frame; the values, when read, are computed by
    the exact expressions the eager decoder used, so existing consumers
    see byte-identical arrays.
    """

    __slots__ = (
        "rgb",
        "frame_type",
        "motion_vectors",
        "_pred_planes",
        "_prediction_rgb",
        "_residual_rgb",
        "_residual_block_energy",
    )

    def __init__(
        self,
        rgb: np.ndarray,  # (H, W, 3) in [0, 1]
        frame_type: str,  # "I" or "P"
        motion_vectors: Optional[np.ndarray] = None,
        pred_planes: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> None:
        self.rgb = rgb
        self.frame_type = frame_type
        #: Luma-grid motion vectors (nby, nbx, 2); None for I-frames.
        self.motion_vectors = motion_vectors
        self._pred_planes = pred_planes
        self._prediction_rgb: Optional[np.ndarray] = None
        self._residual_rgb: Optional[np.ndarray] = None
        self._residual_block_energy: Dict[int, np.ndarray] = {}

    def __repr__(self) -> str:
        return (
            f"DecodedFrame(frame_type={self.frame_type!r}, "
            f"shape={tuple(self.rgb.shape)})"
        )

    @property
    def is_reference(self) -> bool:
        return self.frame_type == "I"

    @property
    def prediction_rgb(self) -> Optional[np.ndarray]:
        """RGB-space motion-compensated prediction; None for I-frames."""
        if self._prediction_rgb is None and self._pred_planes is not None:
            self._prediction_rgb = _planes_to_rgb(*self._pred_planes)
        return self._prediction_rgb

    @property
    def residual_rgb(self) -> Optional[np.ndarray]:
        """RGB-space decoded residual (current minus motion-compensated
        prediction); None for I-frames."""
        if self._residual_rgb is None and self._pred_planes is not None:
            self._residual_rgb = self.rgb - self.prediction_rgb
        return self._residual_rgb

    def residual_block_energy(self, block: int) -> Optional[np.ndarray]:
        """Per-block sum of squared RGB residual, cached per block size.

        The shared residual-energy summary (see :mod:`repro.codec.residual`)
        both the GOP-reuse dirty mask and the SR-integrated decoder's
        RoI-guided residual path consume; None for I-frames.
        """
        if self.residual_rgb is None:
            return None
        if block not in self._residual_block_energy:
            self._residual_block_energy[block] = block_energy(
                self._residual_rgb, block
            )
        return self._residual_block_energy[block]


def _decode_plane(
    reader: BitReader, height: int, width: int, block: int, quality: int
) -> np.ndarray:
    nby, nbx = block_grid_shape(height, width, block)
    levels = decode_blocks(reader, nby * nbx, block)
    recon = inverse_dct(dequantize(levels, quality))
    return merge_blocks(recon, height, width, block)


def _decode_motion(reader: BitReader, nby: int, nbx: int) -> np.ndarray:
    codes = read_exp_golomb_array(reader, nby * nbx * 2)
    return unsigned_to_signed_array(codes).reshape(nby, nbx, 2)


@shaped(y="H W:f64", cb="SH SW:f64", cr="SH SW:f64")
def _planes_to_rgb(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    h, w = y.shape
    return ycbcr_to_rgb(
        (y + 128.0) / PIXEL_SCALE,
        upsample_chroma(cb / PIXEL_SCALE, h, w),
        upsample_chroma(cr / PIXEL_SCALE, h, w),
    )


class VideoDecoder:
    """Stateful decoder matching :class:`~repro.codec.encoder.VideoEncoder`."""

    def __init__(self) -> None:
        self._recon_y: Optional[np.ndarray] = None
        self._recon_cb: Optional[np.ndarray] = None
        self._recon_cr: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._recon_y = self._recon_cb = self._recon_cr = None

    def decode_frame(self, encoded: EncodedFrame) -> DecodedFrame:
        h, w = encoded.height, encoded.width
        block = encoded.block
        quality = encoded.quality
        ch = -(-h // 2)
        cw = -(-w // 2)
        chroma_block = max(block // 2, 2)
        reader = BitReader(encoded.payload)

        if encoded.frame_type == "I":
            y = _decode_plane(reader, h, w, block, quality)
            cb = _decode_plane(reader, ch, cw, block, quality)
            cr = _decode_plane(reader, ch, cw, block, quality)
            self._recon_y = np.clip(y, -128.0, 127.0)
            self._recon_cb = np.clip(cb, -128.0, 127.0)
            self._recon_cr = np.clip(cr, -128.0, 127.0)
            return DecodedFrame(
                rgb=_planes_to_rgb(self._recon_y, self._recon_cb, self._recon_cr),
                frame_type="I",
            )

        if encoded.frame_type != "P":
            raise ValueError(f"unknown frame type {encoded.frame_type!r}")
        if self._recon_y is None:
            raise RuntimeError("P-frame received before any reference frame")

        nby, nbx = block_grid_shape(h, w, block)
        mv = _decode_motion(reader, nby, nbx)
        mv_c = np.round(mv / 2.0).astype(np.int64)

        pred_y = compensate(self._recon_y, mv, block)
        pred_cb = compensate(self._recon_cb, mv_c, chroma_block)
        pred_cr = compensate(self._recon_cr, mv_c, chroma_block)

        res_y = _decode_plane(reader, h, w, block, quality)
        res_cb = _decode_plane(reader, ch, cw, block, quality)
        res_cr = _decode_plane(reader, ch, cw, block, quality)

        self._recon_y = np.clip(pred_y + res_y, -128.0, 127.0)
        self._recon_cb = np.clip(pred_cb + res_cb, -128.0, 127.0)
        self._recon_cr = np.clip(pred_cr + res_cr, -128.0, 127.0)

        return DecodedFrame(
            rgb=_planes_to_rgb(self._recon_y, self._recon_cb, self._recon_cr),
            frame_type="P",
            motion_vectors=mv,
            pred_planes=(pred_y, pred_cb, pred_cr),
        )

    def decode_sequence(self, encoded: Iterable[EncodedFrame]) -> List[DecodedFrame]:
        self.reset()
        return [self.decode_frame(frame) for frame in encoded]
