"""Frame <-> block-grid reshaping with edge padding."""

from __future__ import annotations

import numpy as np

__all__ = ["pad_to_blocks", "split_blocks", "merge_blocks", "block_grid_shape"]


def block_grid_shape(height: int, width: int, block: int) -> tuple[int, int]:
    """Number of (rows, cols) of blocks covering a ``height`` x ``width`` plane."""
    if block < 1:
        raise ValueError(f"block size must be >= 1, got {block}")
    return -(-height // block), -(-width // block)


def pad_to_blocks(plane: np.ndarray, block: int) -> np.ndarray:
    """Edge-pad a 2-D plane so both dims are multiples of ``block``."""
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ValueError(f"expected a 2-D plane, got shape {plane.shape}")
    h, w = plane.shape
    pad_h = (-h) % block
    pad_w = (-w) % block
    if pad_h == 0 and pad_w == 0:
        return plane
    return np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")


def split_blocks(plane: np.ndarray, block: int) -> np.ndarray:
    """Split a padded 2-D plane into (N, block, block) in row-major order."""
    padded = pad_to_blocks(plane, block)
    h, w = padded.shape
    nby, nbx = h // block, w // block
    return (
        padded.reshape(nby, block, nbx, block)
        .transpose(0, 2, 1, 3)
        .reshape(nby * nbx, block, block)
    )


def merge_blocks(
    blocks: np.ndarray, height: int, width: int, block: int
) -> np.ndarray:
    """Inverse of :func:`split_blocks`, cropping padding back off."""
    blocks = np.asarray(blocks)
    nby, nbx = block_grid_shape(height, width, block)
    if blocks.shape != (nby * nbx, block, block):
        raise ValueError(
            f"expected {(nby * nbx, block, block)} blocks for a "
            f"{height}x{width} plane, got {blocks.shape}"
        )
    plane = (
        blocks.reshape(nby, nbx, block, block)
        .transpose(0, 2, 1, 3)
        .reshape(nby * block, nbx * block)
    )
    return plane[:height, :width]
