"""Full-reference image/video quality metrics (PSNR, SSIM, LPIPS surrogate)."""

from .lpips import PERCEPTIBLE_LPIPS_DIFFERENCE, lpips
from .psnr import ACCEPTABLE_PSNR_DB, mse, psnr
from .report import QualityReport, compare_sequences
from .ssim import ssim

__all__ = [
    "ACCEPTABLE_PSNR_DB",
    "PERCEPTIBLE_LPIPS_DIFFERENCE",
    "QualityReport",
    "compare_sequences",
    "lpips",
    "mse",
    "psnr",
    "ssim",
]
