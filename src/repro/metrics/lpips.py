"""Perceptual image distance — an LPIPS surrogate (paper Fig. 14b).

The paper reports LPIPS (Zhang et al. 2018): deep features are extracted at
several layers, unit-normalized along the channel axis, differenced, and
spatially averaged. Real LPIPS needs pretrained AlexNet/VGG weights, which
are unavailable offline, so this module implements the *same recipe* over a
deterministic handcrafted backbone:

* a fixed bank of oriented Gabor/derivative/center-surround filters
  (biologically-motivated V1-style features) applied at three dyadic scales
  of a luma+opponent-color decomposition;
* per-location unit normalization of the feature vector (the LPIPS trick
  that makes the metric sensitive to structure rather than contrast);
* mean squared feature difference, averaged over locations and scales.

The returned distance lives in [0, ~1] with 0 = identical, exactly like
LPIPS, and preserves the property the paper's evaluation relies on:
detail loss from repeated bilinear interpolation scores visibly worse
(higher) than DNN-restored detail. The substitution is documented in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve

__all__ = ["lpips", "PERCEPTIBLE_LPIPS_DIFFERENCE", "feature_stack"]

#: LPIPS difference the paper cites (Hou et al. 2022) as visibly discernible.
PERCEPTIBLE_LPIPS_DIFFERENCE = 0.15

_FILTER_SIZE = 7
_N_SCALES = 3


def _gabor(size: int, theta: float, wavelength: float, sigma: float) -> np.ndarray:
    half = size // 2
    ys, xs = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    xr = xs * np.cos(theta) + ys * np.sin(theta)
    yr = -xs * np.sin(theta) + ys * np.cos(theta)
    envelope = np.exp(-(xr**2 + yr**2) / (2 * sigma**2))
    carrier = np.cos(2 * np.pi * xr / wavelength)
    kernel = envelope * carrier
    return kernel - kernel.mean()


def _dog(size: int, sigma1: float, sigma2: float) -> np.ndarray:
    half = size // 2
    ys, xs = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    r2 = xs**2 + ys**2
    g1 = np.exp(-r2 / (2 * sigma1**2)) / sigma1**2
    g2 = np.exp(-r2 / (2 * sigma2**2)) / sigma2**2
    kernel = g1 - g2
    return kernel - kernel.mean()


def _build_filter_bank() -> np.ndarray:
    """Fixed (K, F, F) filter bank: 8 oriented Gabors + 2 center-surround."""
    filters = []
    for theta in (0.0, np.pi / 4, np.pi / 2, 3 * np.pi / 4):
        for wavelength in (3.0, 6.0):
            filters.append(_gabor(_FILTER_SIZE, theta, wavelength, sigma=2.0))
    filters.append(_dog(_FILTER_SIZE, 1.0, 2.0))
    filters.append(_dog(_FILTER_SIZE, 1.5, 3.0))
    bank = np.stack(filters)
    # L2-normalize each filter so channels contribute comparably.
    norms = np.sqrt((bank**2).sum(axis=(1, 2), keepdims=True))
    return bank / norms


_BANK = _build_filter_bank()


def _opponent_channels(image: np.ndarray) -> np.ndarray:
    """Decompose into luma + two opponent-color channels, shape (3, H, W)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        zeros = np.zeros_like(image)
        return np.stack([image, zeros, zeros])
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W) or (H, W, 3) image, got {image.shape}")
    r, g, b = image[..., 0], image[..., 1], image[..., 2]
    luma = 0.299 * r + 0.587 * g + 0.114 * b
    rg = (r - g) / 2.0
    by = (b - (r + g) / 2.0) / 2.0
    return np.stack([luma, rg, by])


def _downsample2(image: np.ndarray) -> np.ndarray:
    """2x2 average-pool downsample of a (C, H, W) stack."""
    c, h, w = image.shape
    h2, w2 = h - h % 2, w - w % 2
    trimmed = image[:, :h2, :w2]
    return trimmed.reshape(c, h2 // 2, 2, w2 // 2, 2).mean(axis=(2, 4))


def feature_stack(image: np.ndarray, scale: int) -> np.ndarray:
    """Extract the (K*, H', W') normalized feature stack at one dyadic scale."""
    channels = _opponent_channels(image)
    for _ in range(scale):
        channels = _downsample2(channels)
    maps = [
        convolve(chan, kernel, mode="nearest")
        for chan in channels
        for kernel in _BANK
    ]
    feats = np.stack(maps)  # (3*K, H', W')
    norms = np.sqrt((feats**2).sum(axis=0, keepdims=True)) + 1e-8
    return feats / norms


def lpips(reference: np.ndarray, test: np.ndarray) -> float:
    """Perceptual distance in [0, ~1]; lower means more similar.

    Both images must share a shape and lie (approximately) in [0, 1].
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if min(reference.shape[:2]) < _FILTER_SIZE * 2**_N_SCALES:
        raise ValueError(
            f"image {reference.shape[:2]} too small for {_N_SCALES}-scale "
            f"analysis with {_FILTER_SIZE}x{_FILTER_SIZE} filters"
        )
    total = 0.0
    for scale in range(_N_SCALES):
        fa = feature_stack(reference, scale)
        fb = feature_stack(test, scale)
        total += float(((fa - fb) ** 2).sum(axis=0).mean())
    return total / _N_SCALES
