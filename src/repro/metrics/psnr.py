"""Peak signal-to-noise ratio (pixel-wise quality, paper Fig. 13/14a).

The paper treats 30 dB as the acceptability floor for streamed game frames
(Sec. V-B, citing Shea et al.); :data:`ACCEPTABLE_PSNR_DB` encodes that.
"""

from __future__ import annotations

import numpy as np

from ..contracts import shaped

__all__ = ["mse", "psnr", "ACCEPTABLE_PSNR_DB"]

#: PSNR value the paper cites as the acceptability floor for video frames.
ACCEPTABLE_PSNR_DB = 30.0


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs test {test.shape}"
        )
    return float(np.mean((reference - test) ** 2))


@shaped(reference="H W:n|H W C:n|N C H W:n", test="H W:n|H W C:n|N C H W:n")
def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 1.0) -> float:
    """PSNR in dB of ``test`` against ``reference``.

    ``data_range`` is the dynamic range of the pixel values (1.0 for images
    in [0, 1], 255 for 8-bit). Identical images return ``inf``.
    """
    if data_range <= 0:
        raise ValueError(f"data_range must be positive, got {data_range}")
    err = mse(reference, test)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10((data_range**2) / err))
