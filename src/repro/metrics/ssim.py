"""Structural similarity index (SSIM), Wang et al. 2004.

Not reported in the paper's figures but used in our ablation benches and
tests as a second full-reference check on the quality claims.
"""

from __future__ import annotations

import numpy as np

from ..contracts import shaped
from scipy.ndimage import uniform_filter

__all__ = ["ssim"]


def _to_luma(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 3:
        if image.shape[2] == 3:
            return image @ np.array([0.299, 0.587, 0.114])
        return image.mean(axis=2)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D image, got shape {image.shape}")
    return image


@shaped(reference="H W:n|H W C:n", test="H W:n|H W C:n")
def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 1.0,
    window: int = 7,
) -> float:
    """Mean SSIM over a uniform sliding window (computed on luma).

    Returns a value in (-1, 1]; 1.0 means identical images.
    """
    if data_range <= 0:
        raise ValueError(f"data_range must be positive, got {data_range}")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    x = _to_luma(reference)
    y = _to_luma(test)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if min(x.shape) < window:
        raise ValueError(
            f"image {x.shape} smaller than SSIM window {window}"
        )

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_x = uniform_filter(x, window)
    mu_y = uniform_filter(y, window)
    xx = uniform_filter(x * x, window)
    yy = uniform_filter(y * y, window)
    xy = uniform_filter(x * y, window)

    var_x = np.maximum(xx - mu_x * mu_x, 0.0)
    var_y = np.maximum(yy - mu_y * mu_y, 0.0)
    cov = xy - mu_x * mu_y

    ssim_map = ((2 * mu_x * mu_y + c1) * (2 * cov + c2)) / (
        (mu_x**2 + mu_y**2 + c1) * (var_x + var_y + c2)
    )
    # Trim the window/2 border where the uniform filter wraps statistics.
    pad = window // 2
    core = ssim_map[pad : ssim_map.shape[0] - pad, pad : ssim_map.shape[1] - pad]
    if core.size == 0:
        core = ssim_map
    return float(core.mean())
