"""Aggregate quality reporting over frame sequences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .lpips import lpips
from .psnr import psnr
from .ssim import ssim

__all__ = ["QualityReport", "compare_sequences"]


@dataclass(frozen=True)
class QualityReport:
    """Per-sequence quality summary against a reference sequence."""

    psnr_db: tuple[float, ...]
    ssim_vals: tuple[float, ...]
    lpips_vals: tuple[float, ...]

    @property
    def mean_psnr(self) -> float:
        finite = [p for p in self.psnr_db if np.isfinite(p)]
        return float(np.mean(finite)) if finite else float("inf")

    @property
    def min_psnr(self) -> float:
        return float(min(self.psnr_db)) if self.psnr_db else float("inf")

    @property
    def mean_ssim(self) -> float:
        return float(np.mean(self.ssim_vals)) if self.ssim_vals else 1.0

    @property
    def mean_lpips(self) -> float:
        return float(np.mean(self.lpips_vals)) if self.lpips_vals else 0.0

    def __len__(self) -> int:
        return len(self.psnr_db)


def compare_sequences(
    references: Sequence[np.ndarray] | Iterable[np.ndarray],
    tests: Sequence[np.ndarray] | Iterable[np.ndarray],
    with_lpips: bool = True,
    with_ssim: bool = True,
) -> QualityReport:
    """Compute per-frame PSNR/SSIM/LPIPS of ``tests`` against ``references``."""
    psnrs: list[float] = []
    ssims: list[float] = []
    lpipss: list[float] = []
    ref_list = list(references)
    test_list = list(tests)
    if len(ref_list) != len(test_list):
        raise ValueError(
            f"sequence length mismatch: {len(ref_list)} references vs "
            f"{len(test_list)} test frames"
        )
    for ref, test in zip(ref_list, test_list):
        psnrs.append(psnr(ref, test))
        if with_ssim:
            ssims.append(ssim(ref, test))
        if with_lpips:
            lpipss.append(lpips(ref, test))
    return QualityReport(tuple(psnrs), tuple(ssims), tuple(lpipss))
