"""Trace-export JSON schema and a dependency-free validator.

The per-session trace export (``SessionResult.to_trace_dict``) is the
machine-readable contract between the simulator and external tooling
(dashboards, regression diffing, the pipeline smoke in
``scripts/check.sh``). :data:`SESSION_TRACE_SCHEMA` pins that contract;
:func:`validate` checks an instance against the JSON-Schema subset used
here (type / properties / required / items / enum / additionalProperties)
without pulling in a jsonschema dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

__all__ = [
    "SchemaError",
    "METRIC_FAMILIES",
    "SESSION_TRACE_SCHEMA",
    "FRAME_TRACE_SCHEMA",
    "STAGE_SPAN_SCHEMA",
    "VOLATILE_METRIC_PREFIXES",
    "canonicalize_session_trace",
    "match_metric_family",
    "validate",
    "validate_session_trace",
]

#: Metric-name prefixes whose values depend on wall-clock measurement or
#: executor scheduling rather than the deterministic platform model.
#: :func:`canonicalize_session_trace` strips them so serial and pipelined
#: exports of the same session compare byte-identical.
VOLATILE_METRIC_PREFIXES = ("stage_wall_ms/", "pipeline/")

#: The pinned metric-name registry: every counter/histogram the
#: observability layer may emit, mapped to its kind. Families ending in
#: ``*`` are dynamic: the suffix is interpolated per span/backend/rung
#: at the call site. The ``metric-schema`` lint pass statically collects
#: every registry call site and checks it against this table (unknown
#: family, kind mismatch, or a concrete name a dynamic family can also
#: generate are all lint errors), so the trace export's metric namespace
#: cannot drift or collide without a deliberate edit here.
METRIC_FAMILIES: Dict[str, str] = {
    "frames_total": "counter",
    "frames_dropped": "counter",
    "network_retransmissions": "counter",
    "frame_total_ms": "histogram",
    "stage_ms/*": "histogram",
    "stage_wall_ms/*": "histogram",
    "sr.reuse/frames": "counter",
    "sr.reuse/tiles_reused": "counter",
    "sr.reuse/tiles_recomputed_sr": "counter",
    "sr.reuse/tiles_recomputed_bilinear": "counter",
    "sr.reuse/refreshes": "counter",
    "sr.reuse/refresh_*": "counter",
    "sr.reuse/warp_ms": "histogram",
    "sr.reuse/dirty_fraction": "histogram",
    "sr.dispatch/frames": "counter",
    "sr.dispatch/tiles_total": "counter",
    "sr.dispatch/overflow_tiles": "counter",
    "sr.dispatch/backend_tiles/*": "counter",
    "sr.dispatch/engine_ms_*": "histogram",
    "sr.dispatch/upscale_ms": "histogram",
    "sr.dispatch/mean_difficulty": "histogram",
    "net.scenario/frames": "counter",
    "net.scenario/frames_*": "counter",
    "net.scenario/burst_frames": "counter",
    "net.scenario/bandwidth_mbps": "histogram",
    "net.scenario/propagation_ms": "histogram",
    "net.scenario/jitter_ms": "histogram",
    "net.scenario/loss_rate": "histogram",
    "abr/frames": "counter",
    "abr/frames_*": "counter",
    "abr/switches": "counter",
    "abr/idr_requests": "counter",
    "abr/quality": "histogram",
    "abr/roi_side": "histogram",
    "pipeline/queue_wait_ms": "histogram",
    "pipeline/ring_occupancy": "histogram",
    "pipeline/consumer_stalls": "counter",
    "pipeline/producer_stalls": "counter",
    "pipeline/producer_stall_ms": "counter",
    "pipeline/frames_produced": "counter",
    "pipeline/truncated": "counter",
    "pipeline/frames_missing": "counter",
}


def match_metric_family(name: str) -> Union[str, None]:
    """The METRIC_FAMILIES key a concrete metric name belongs to.

    Exact entries win over dynamic ``prefix*`` families; returns None
    for a name outside the registry entirely.
    """
    if name in METRIC_FAMILIES:
        return name
    for family in METRIC_FAMILIES:
        if family.endswith("*") and name.startswith(family[:-1]):
            return family
    return None


class SchemaError(ValueError):
    """An instance violated the schema; ``path`` points at the offender."""


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> None:
    """Validate ``instance`` against the supported JSON-Schema subset."""
    expected = schema.get("type")
    if expected is not None:
        types: List[str] = [expected] if isinstance(expected, str) else list(expected)
        if not any(_type_ok(instance, t) for t in types):
            raise SchemaError(
                f"{path}: expected type {' or '.join(types)}, "
                f"got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(f"{path}: {instance!r} not in enum {schema['enum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in instance:
                validate(instance[name], subschema, f"{path}.{name}")
        if schema.get("additionalProperties") is False:
            extra = set(instance) - set(properties)
            if extra:
                raise SchemaError(f"{path}: unexpected properties {sorted(extra)}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]")


_NON_NEGATIVE_NUMBER = {"type": "number"}

STAGE_SPAN_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["name", "modeled_ms", "wall_ms", "mtp", "energy"],
    "properties": {
        "name": {"type": "string"},
        "modeled_ms": _NON_NEGATIVE_NUMBER,
        "wall_ms": _NON_NEGATIVE_NUMBER,
        "mtp": {"type": "boolean"},
        "energy": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["component", "ms", "category"],
                "properties": {
                    "component": {"type": "string"},
                    "ms": _NON_NEGATIVE_NUMBER,
                    "category": {"enum": ["network", "decode", "upscale"]},
                },
            },
        },
        "metadata": {"type": "object"},
    },
}

FRAME_TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["index", "frame_type", "total_modeled_ms", "spans"],
    "properties": {
        "index": {"type": "integer"},
        "frame_type": {"type": ["string", "null"]},
        "total_modeled_ms": _NON_NEGATIVE_NUMBER,
        "spans": {"type": "array", "items": STAGE_SPAN_SCHEMA},
    },
}

SESSION_TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["session", "frames", "metrics"],
    "properties": {
        "session": {
            "type": "object",
            "required": ["game_id", "design", "device", "n_frames", "gop_size"],
            "properties": {
                "game_id": {"type": "string"},
                "design": {"type": "string"},
                "device": {"type": "string"},
                "n_frames": {"type": "integer"},
                "gop_size": {"type": "integer"},
            },
        },
        "frames": {"type": "array", "items": FRAME_TRACE_SCHEMA},
        "metrics": {"type": "object"},
    },
}


def validate_session_trace(instance: Any) -> None:
    """Validate one session trace export against the pinned schema."""
    validate(instance, SESSION_TRACE_SCHEMA)


def canonicalize_session_trace(instance: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministic view of a session trace export.

    Returns a deep copy with every span's ``wall_ms`` zeroed and all
    metrics under :data:`VOLATILE_METRIC_PREFIXES` removed. Everything
    left — span names and order, ``modeled_ms``, energy attributions,
    metadata, modeled-latency metrics — is a pure function of the session
    configuration, so two canonicalized exports of the same session are
    equal regardless of which executor (serial or pipelined) produced
    them or how the host was loaded. The determinism suite and the
    ``scripts/check.sh`` pipelined smoke compare these.
    """
    out = {
        "session": dict(instance["session"]),
        "frames": [],
        "metrics": {},
    }
    for frame in instance["frames"]:
        f = dict(frame)
        f["spans"] = [{**span, "wall_ms": 0.0} for span in frame["spans"]]
        out["frames"].append(f)
    for name, metric in instance["metrics"].items():
        if not name.startswith(VOLATILE_METRIC_PREFIXES):
            out["metrics"][name] = metric
    return out
