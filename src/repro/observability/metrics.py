"""Lightweight metrics primitives: counters + streaming histograms.

A deliberately tiny, dependency-free metrics layer (in the spirit of a
Prometheus client, scoped to what the streaming simulator needs): the
session loop feeds per-frame :class:`~repro.streaming.pipeline.FrameTrace`
spans into a :class:`MetricsRegistry`, and analysis/CLI consumers export
the registry as JSON next to the raw traces.

Histograms are *streaming*: they keep count/sum/min/max plus fixed bucket
counts (log-spaced by default, which suits latencies spanning 0.01 ms
display waits to 300 ms full-frame SR), so memory stays O(buckets) no
matter how many frames a session streams.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Counter", "Histogram", "MetricsRegistry", "default_latency_buckets"]


def default_latency_buckets(
    start_ms: float = 0.01, factor: float = 2.0, count: int = 18
) -> List[float]:
    """Log-spaced bucket upper bounds: 0.01 ms .. ~1.3 s by default."""
    if start_ms <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start_ms > 0, factor > 1, count >= 1")
    return [start_ms * factor**i for i in range(count)]


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bucket streaming histogram with count/sum/min/max."""

    name: str
    #: Inclusive upper bounds of the finite buckets; observations above
    #: the last bound land in the implicit +inf overflow bucket.
    bounds: Sequence[float] = field(default_factory=default_latency_buckets)
    counts: List[int] = field(init=False)
    count: int = field(init=False, default=0)
    sum: float = field(init=False, default=0.0)
    min: float = field(init=False, default=math.inf)
    max: float = field(init=False, default=-math.inf)

    def __post_init__(self) -> None:
        bounds = list(self.bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow bucket

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds (conservative)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Get-or-create registry of named counters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name in self._histograms:
            raise ValueError(f"{name!r} is already registered as a histogram")
        return self._counters.setdefault(name, Counter(name))

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        if name in self._counters:
            raise ValueError(f"{name!r} is already registered as a counter")
        if name not in self._histograms:
            self._histograms[name] = (
                Histogram(name, bounds) if bounds is not None else Histogram(name)
            )
        return self._histograms[name]

    def names(self) -> List[str]:
        return sorted(list(self._counters) + list(self._histograms))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in self.names():
            metric = self._counters.get(name) or self._histograms[name]
            out[name] = metric.to_dict()
        return out

    def export_json(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path
