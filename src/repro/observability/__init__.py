"""Per-frame observability: metrics registry + trace export schema.

This package is intentionally free of streaming imports (the streaming
session loop imports *us*): :class:`MetricsRegistry` is fed duck-typed
:class:`~repro.streaming.pipeline.FrameTrace` objects via
:func:`observe_frame_trace`, and :mod:`repro.observability.schema` pins
the JSON contract of the session trace export.
"""

from __future__ import annotations

from .metrics import Counter, Histogram, MetricsRegistry, default_latency_buckets
from .schema import (
    FRAME_TRACE_SCHEMA,
    METRIC_FAMILIES,
    SESSION_TRACE_SCHEMA,
    STAGE_SPAN_SCHEMA,
    VOLATILE_METRIC_PREFIXES,
    SchemaError,
    canonicalize_session_trace,
    match_metric_family,
    validate,
    validate_session_trace,
)

__all__ = [
    "Counter",
    "FRAME_TRACE_SCHEMA",
    "Histogram",
    "METRIC_FAMILIES",
    "MetricsRegistry",
    "SESSION_TRACE_SCHEMA",
    "STAGE_SPAN_SCHEMA",
    "SchemaError",
    "VOLATILE_METRIC_PREFIXES",
    "canonicalize_session_trace",
    "default_latency_buckets",
    "match_metric_family",
    "observe_frame_trace",
    "observe_pipeline_dequeue",
    "observe_pipeline_producer",
    "observe_pipeline_truncation",
    "validate",
    "validate_session_trace",
]


def observe_frame_trace(registry: MetricsRegistry, trace) -> None:
    """Feed one frame's trace into the registry.

    Records a latency histogram per stage (``stage_ms/<name>``), frame and
    retransmission counters, and deadline-drop counts surfaced by the
    transport stage metadata. ``trace`` is duck-typed so this package
    never imports the streaming layer.
    """
    registry.counter("frames_total").inc()
    for span in trace.spans:
        registry.histogram(f"stage_ms/{span.name}").observe(span.modeled_ms)
        registry.histogram(f"stage_wall_ms/{span.name}").observe(span.wall_ms)
        if span.metadata.get("dropped"):
            registry.counter("frames_dropped").inc()
        retx = span.metadata.get("n_retransmissions")
        if retx:
            registry.counter("network_retransmissions").inc(retx)
        reuse = span.metadata.get("reuse")
        if reuse is not None:
            _observe_reuse(registry, reuse)
        dispatch = span.metadata.get("dispatch")
        if dispatch is not None:
            _observe_dispatch(registry, dispatch)
        scenario = span.metadata.get("scenario")
        if scenario is not None:
            _observe_scenario(registry, scenario)
        abr = span.metadata.get("abr")
        if abr is not None:
            _observe_abr(registry, abr)
    registry.histogram("frame_total_ms").observe(trace.total_modeled_ms)


def _observe_reuse(registry: MetricsRegistry, reuse: dict) -> None:
    """Record one frame's GOP-reuse decision (``reuse`` span metadata)."""
    registry.counter("sr.reuse/frames").inc()
    # Names spelled out (not interpolated from the dict keys) so the
    # metric-schema lint pass can pin each one against METRIC_FAMILIES.
    count = int(reuse.get("tiles_reused", 0))
    if count:
        registry.counter("sr.reuse/tiles_reused").inc(count)
    count = int(reuse.get("tiles_recomputed_sr", 0))
    if count:
        registry.counter("sr.reuse/tiles_recomputed_sr").inc(count)
    count = int(reuse.get("tiles_recomputed_bilinear", 0))
    if count:
        registry.counter("sr.reuse/tiles_recomputed_bilinear").inc(count)
    if reuse.get("refresh"):
        registry.counter("sr.reuse/refreshes").inc()
        reason = reuse.get("reason")
        if reason:
            registry.counter(f"sr.reuse/refresh_{reason}").inc()
    registry.histogram("sr.reuse/warp_ms").observe(float(reuse.get("warp_ms", 0.0)))
    registry.histogram("sr.reuse/dirty_fraction").observe(
        float(reuse.get("dirty_fraction", 1.0))
    )


def _observe_dispatch(registry: MetricsRegistry, dispatch: dict) -> None:
    """Record one frame's tile-dispatch plan (``dispatch`` span metadata,
    the :meth:`repro.sr.dispatch.DispatchPlan.meta` payload)."""
    registry.counter("sr.dispatch/frames").inc()
    registry.counter("sr.dispatch/tiles_total").inc(
        int(dispatch.get("tiles_total", 0))
    )
    overflow = int(dispatch.get("overflow_tiles", 0))
    if overflow:
        registry.counter("sr.dispatch/overflow_tiles").inc(overflow)
    # Dynamic per-backend family lives under its own namespace: the old
    # f"sr.dispatch/tiles_{name}" spelling could collide with the static
    # "sr.dispatch/tiles_total" aggregate (a backend named "total" would
    # silently merge counts) — the metric-schema lint pass pins this.
    for name, count in (dispatch.get("backend_tiles") or {}).items():
        if count:
            registry.counter(f"sr.dispatch/backend_tiles/{name}").inc(int(count))
    for engine, ms in (dispatch.get("engine_ms") or {}).items():
        registry.histogram(f"sr.dispatch/engine_ms_{engine}").observe(float(ms))
    registry.histogram("sr.dispatch/upscale_ms").observe(
        float(dispatch.get("upscale_ms", 0.0))
    )
    registry.histogram("sr.dispatch/mean_difficulty").observe(
        float(dispatch.get("mean_difficulty", 0.0))
    )


def _observe_scenario(registry: MetricsRegistry, scenario: dict) -> None:
    """Record the trace-driven link conditions one frame transmitted
    under (``scenario`` network-span metadata from
    :class:`repro.network.trace.TraceDrivenLink`)."""
    registry.counter("net.scenario/frames").inc()
    name = scenario.get("scenario")
    if name:
        registry.counter(f"net.scenario/frames_{name}").inc()
    if scenario.get("burst_state") == "bad":
        registry.counter("net.scenario/burst_frames").inc()
    registry.histogram("net.scenario/bandwidth_mbps").observe(
        float(scenario.get("bandwidth_mbps", 0.0))
    )
    registry.histogram("net.scenario/propagation_ms").observe(
        float(scenario.get("propagation_ms", 0.0))
    )
    registry.histogram("net.scenario/jitter_ms").observe(
        float(scenario.get("jitter_ms", 0.0))
    )
    registry.histogram("net.scenario/loss_rate").observe(
        float(scenario.get("loss_rate", 0.0))
    )


def _observe_abr(registry: MetricsRegistry, abr: dict) -> None:
    """Record one frame's ABR operating point (``abr`` network-span
    metadata from :class:`repro.streaming.abr.ABRController`)."""
    registry.counter("abr/frames").inc()
    rung = abr.get("rung")
    if rung:
        registry.counter(f"abr/frames_{rung}").inc()
    if abr.get("switched"):
        registry.counter("abr/switches").inc()
    if abr.get("force_idr"):
        registry.counter("abr/idr_requests").inc()
    registry.histogram("abr/quality").observe(float(abr.get("quality", 0.0)))
    registry.histogram("abr/roi_side").observe(float(abr.get("roi_side", 0.0)))


# -- pipelined-executor metrics (all under the volatile "pipeline/"
# namespace: they measure executor scheduling, not the platform model,
# and are stripped by canonicalize_session_trace) ------------------------


def observe_pipeline_dequeue(
    registry: MetricsRegistry,
    queue_wait_ms: float,
    occupancy: int,
    stalled: bool,
) -> None:
    """Record the consumer side of one ring-buffer dequeue.

    ``queue_wait_ms`` is how long the consumer blocked for the frame to
    be published; ``occupancy`` is how many published-but-unconsumed
    frames the ring held right after the pop; ``stalled`` marks waits
    long enough to mean the producer was the bottleneck for this frame.
    """
    registry.histogram("pipeline/queue_wait_ms").observe(queue_wait_ms)
    registry.histogram("pipeline/ring_occupancy").observe(float(occupancy))
    if stalled:
        registry.counter("pipeline/consumer_stalls").inc()


def observe_pipeline_producer(
    registry: MetricsRegistry,
    backpressure_waits: int,
    backpressure_wait_ms: float,
    frames_produced: int,
) -> None:
    """Record the producer's end-of-session stall evidence.

    ``backpressure_waits``/``backpressure_wait_ms`` come from the ring's
    shared stall counters: pushes that found the ring full (the *client*
    was the bottleneck) and the total time blocked in them.
    """
    registry.counter("pipeline/producer_stalls").inc(backpressure_waits)
    registry.counter("pipeline/producer_stall_ms").inc(backpressure_wait_ms)
    registry.counter("pipeline/frames_produced").inc(frames_produced)


def observe_pipeline_truncation(registry: MetricsRegistry, missing_frames: int) -> None:
    """Record that the producer died before publishing every frame."""
    registry.counter("pipeline/truncated").inc()
    registry.counter("pipeline/frames_missing").inc(missing_frames)
