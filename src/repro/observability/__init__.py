"""Per-frame observability: metrics registry + trace export schema.

This package is intentionally free of streaming imports (the streaming
session loop imports *us*): :class:`MetricsRegistry` is fed duck-typed
:class:`~repro.streaming.pipeline.FrameTrace` objects via
:func:`observe_frame_trace`, and :mod:`repro.observability.schema` pins
the JSON contract of the session trace export.
"""

from __future__ import annotations

from .metrics import Counter, Histogram, MetricsRegistry, default_latency_buckets
from .schema import (
    FRAME_TRACE_SCHEMA,
    SESSION_TRACE_SCHEMA,
    STAGE_SPAN_SCHEMA,
    SchemaError,
    validate,
    validate_session_trace,
)

__all__ = [
    "Counter",
    "FRAME_TRACE_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "SESSION_TRACE_SCHEMA",
    "STAGE_SPAN_SCHEMA",
    "SchemaError",
    "default_latency_buckets",
    "observe_frame_trace",
    "validate",
    "validate_session_trace",
]


def observe_frame_trace(registry: MetricsRegistry, trace) -> None:
    """Feed one frame's trace into the registry.

    Records a latency histogram per stage (``stage_ms/<name>``), frame and
    retransmission counters, and deadline-drop counts surfaced by the
    transport stage metadata. ``trace`` is duck-typed so this package
    never imports the streaming layer.
    """
    registry.counter("frames_total").inc()
    for span in trace.spans:
        registry.histogram(f"stage_ms/{span.name}").observe(span.modeled_ms)
        registry.histogram(f"stage_wall_ms/{span.name}").observe(span.wall_ms)
        if span.metadata.get("dropped"):
            registry.counter("frames_dropped").inc()
        retx = span.metadata.get("n_retransmissions")
        if retx:
            registry.counter("network_retransmissions").inc(retx)
    registry.histogram("frame_total_ms").observe(trace.total_modeled_ms)
