"""reprolint: AST static analysis enforcing the repo's hard invariants.

PRs 1-4 froze invariants by hand — a float32 no-grad inference dtype
policy, exact tie-breaking instead of epsilon fudge, bit-identical
frozen baselines, an acyclic layered import graph. This package turns
them into tooling: ``python -m repro.lint src/ tests/`` runs a
plugin-style registry of AST passes (no third-party dependencies) with
inline suppressions, a checked-in baseline for grandfathered findings,
and text/JSON reporters. See DESIGN.md ("Static analysis & runtime
contracts")
for the rule catalogue and workflow, and :mod:`repro.contracts` for the
paired runtime shape/dtype contract layer.
"""

from __future__ import annotations

from .framework import (
    FileLintPass,
    Finding,
    LintPass,
    LintResult,
    ModuleInfo,
    Project,
    collect_modules,
    load_baseline,
    register_pass,
    registered_passes,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)

__all__ = [
    "FileLintPass",
    "Finding",
    "LintPass",
    "LintResult",
    "ModuleInfo",
    "Project",
    "collect_modules",
    "load_baseline",
    "register_pass",
    "registered_passes",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
