"""reprolint framework: modules, findings, suppressions, baseline, reporters.

The framework is dependency-free (stdlib ``ast`` only) and knows nothing
about individual rules — passes live in :mod:`repro.lint.rules` and
register themselves with :func:`register_pass`. The pipeline is::

    paths -> collect_modules -> Project -> every pass -> Finding stream
          -> suppression filter (# reprolint: disable=<rule>)
          -> baseline filter (checked-in grandfathered findings)
          -> reporter (text/json) + exit code

Suppressions
------------
``# reprolint: disable=rule-a,rule-b`` on a line suppresses those rules'
findings *on that line* (put it on the first line of a multi-line
statement, where ``ast`` anchors the node). ``disable=all`` suppresses
every rule. ``# reprolint: disable-file=rule-a`` anywhere in a file
suppresses the rule for the whole file. Anything after ``--`` in the
comment is a free-form justification.

Baseline
--------
The baseline file grandfathers pre-existing findings (frozen legacy
benchmark copies, mostly). Entries match on ``(rule, path, source-line
text)`` — not line numbers — so unrelated edits don't invalidate them,
while *changing* a grandfathered line surfaces the finding again.
Regenerate with ``python -m repro.lint ... --write-baseline``.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "LintPass",
    "FileLintPass",
    "register_pass",
    "registered_passes",
    "collect_modules",
    "load_baseline",
    "baseline_entries",
    "write_baseline",
    "LintResult",
    "run_lint",
    "render_text",
    "render_json",
    "SYNTAX_RULE",
]

#: Pseudo-rule used for files that fail to parse.
SYNTAX_RULE = "syntax-error"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # posix-style path as given on the command line
    line: int  # 1-based; 0 for whole-file/project findings
    col: int
    message: str
    text: str = ""  # stripped source of the offending line (baseline key)

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.text)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
        }


class ModuleInfo:
    """One parsed source file plus the metadata passes need."""

    def __init__(
        self,
        path: Path,
        rel: str,
        source: str,
        tree: Optional[ast.Module],
        name: Optional[str] = None,
    ) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        #: Dotted module name when the file belongs to an importable
        #: package rooted at a ``src/`` directory (``repro.codec.motion``);
        #: None for scripts/benchmarks/tests outside a package root.
        self.name = name
        self.lines: List[str] = source.splitlines()
        self._suppress_lines: Optional[Dict[int, set]] = None
        self._suppress_file: Optional[set] = None
        self._decorator_owner: Optional[Dict[int, int]] = None

    @property
    def is_test(self) -> bool:
        parts = {p.lower() for p in Path(self.rel).parts}
        stem = Path(self.rel).name
        return (
            "tests" in parts
            or "test" in parts
            or stem.startswith("test_")
            or stem == "conftest.py"
        )

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def in_package(self, prefixes: Sequence[str]) -> bool:
        if self.name is None:
            return False
        return any(
            self.name == p or self.name.startswith(p + ".") for p in prefixes
        )

    def _scan_suppressions(self) -> None:
        per_line: Dict[int, set] = {}
        whole_file: set = set()
        for lineno, line in enumerate(self.lines, start=1):
            if "reprolint" not in line:
                continue
            for match in _SUPPRESS_RE.finditer(line):
                kind = match.group(1)
                rules = {r.strip() for r in match.group(2).split(",") if r.strip()}
                if kind == "disable-file":
                    whole_file |= rules
                else:
                    per_line.setdefault(lineno, set()).update(rules)
        self._suppress_lines = per_line
        self._suppress_file = whole_file

    def _scan_decorators(self) -> None:
        """Map every decorator line to the line of the ``def``/``class``
        it adorns, so a suppression on the definition line also covers
        findings ast-anchored inside its decorators."""
        owner: Dict[int, int] = {}
        if self.tree is not None:
            for node in ast.walk(self.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                for deco in node.decorator_list:
                    end = getattr(deco, "end_lineno", None) or deco.lineno
                    for line in range(deco.lineno, end + 1):
                        owner.setdefault(line, node.lineno)
        self._decorator_owner = owner

    def suppressed(self, finding: Finding) -> bool:
        if self._suppress_lines is None:
            self._scan_suppressions()
        if self._decorator_owner is None:
            self._scan_decorators()
        assert self._suppress_lines is not None and self._suppress_file is not None
        assert self._decorator_owner is not None
        if {finding.rule, "all"} & self._suppress_file:
            return True
        for line in (finding.line, self._decorator_owner.get(finding.line)):
            if line is None:
                continue
            rules = self._suppress_lines.get(line, ())
            if finding.rule in rules or "all" in rules:
                return True
        return False

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    @classmethod
    def from_path(
        cls, path: Path, rel: Optional[str] = None, name: Optional[str] = None
    ) -> "ModuleInfo":
        source = path.read_text()
        rel_text = rel if rel is not None else path.as_posix()
        if name is None:
            name = _derive_module_name(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            tree = None
        return cls(path=path, rel=rel_text, source=source, tree=tree, name=name)


def _derive_module_name(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``src/`` package root."""
    parts = list(path.resolve().parts)
    if "src" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("src")
    module_parts = parts[idx + 1 :]
    if not module_parts or not module_parts[-1].endswith(".py"):
        return None
    module_parts[-1] = module_parts[-1][: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts) if module_parts else None


class Project:
    """Every module under lint, with name-indexed access for graph passes."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {
            m.name: m for m in self.modules if m.name is not None
        }
        self._symbols = None
        self._call_graph = None

    def named_modules(self, prefix: str) -> List[ModuleInfo]:
        return [m for m in self.modules if m.name and m.in_package([prefix])]

    @property
    def symbols(self):
        """Lazily-built project :class:`~repro.lint.graph.SymbolTable`,
        shared by every whole-program pass in a run."""
        if self._symbols is None:
            from .graph import SymbolTable

            self._symbols = SymbolTable(self)
        return self._symbols

    @property
    def call_graph(self):
        """Lazily-built project :class:`~repro.lint.graph.CallGraph`."""
        if self._call_graph is None:
            from .graph import CallGraph

            self._call_graph = CallGraph(self, self.symbols)
        return self._call_graph


class LintPass:
    """Base class for a registered rule. Subclasses set ``name`` and
    ``description`` and implement :meth:`run` over the whole project."""

    name: str = ""
    description: str = ""

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        mod: ModuleInfo,
        node: Optional[ast.AST],
        message: str,
        text: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=self.name,
            path=mod.rel,
            line=line,
            col=col,
            message=message,
            text=text if text is not None else mod.line_text(line),
        )


class FileLintPass(LintPass):
    """Convenience base for passes that inspect one module at a time."""

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None:
                continue
            yield from self.check_module(mod, project)

    def check_module(self, mod: ModuleInfo, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[LintPass]] = {}


def register_pass(cls: Type[LintPass]) -> Type[LintPass]:
    """Class decorator adding a pass to the global registry."""
    if not cls.name:
        raise ValueError(f"lint pass {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate lint pass name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> Dict[str, Type[LintPass]]:
    """Name -> class for every registered pass (rules import on demand)."""
    from . import rules  # noqa: F401  -- importing registers the passes

    return dict(sorted(_REGISTRY.items()))


def collect_modules(paths: Sequence[str]) -> List[ModuleInfo]:
    """Expand files/directories into parsed ModuleInfos (sorted, deduped)."""
    seen = set()
    files: List[Tuple[str, Path]] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if "__pycache__" in sub.parts:
                    continue
                if sub.resolve() not in seen:
                    seen.add(sub.resolve())
                    files.append((sub.as_posix(), sub))
        elif p.suffix == ".py" and p.exists():
            if "__pycache__" in p.parts:
                continue
            if p.resolve() not in seen:
                seen.add(p.resolve())
                files.append((p.as_posix(), p))
    return [ModuleInfo.from_path(path, rel=rel) for rel, path in files]


def load_baseline(path: Path) -> Counter:
    """Multiset of grandfathered ``(rule, path, text)`` keys."""
    data = json.loads(path.read_text())
    entries = data.get("entries", []) if isinstance(data, dict) else data
    counter: Counter = Counter()
    for entry in entries:
        counter[(entry["rule"], entry["path"], entry.get("text", ""))] += 1
    return counter


def baseline_entries(findings: Iterable[Finding]) -> List[Dict[str, str]]:
    return [
        {"rule": f.rule, "path": f.path, "text": f.text}
        for f in sorted(findings, key=lambda f: (f.path, f.rule, f.line))
    ]


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    payload = {"version": 1, "entries": baseline_entries(findings)}
    path.write_text(json.dumps(payload, indent=2) + "\n")


@dataclass
class LintResult:
    """Outcome of one lint run, pre-split for reporting."""

    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    modules: int = 0

    @property
    def ok(self) -> bool:
        return not self.new


def run_lint(
    paths: Sequence[str],
    rule_names: Optional[Sequence[str]] = None,
    baseline: Optional[Counter] = None,
    modules: Optional[Sequence[ModuleInfo]] = None,
) -> LintResult:
    """Run the selected passes and partition findings.

    ``modules`` overrides path collection (used by tests to lint fixture
    snippets under synthetic module names).
    """
    passes = registered_passes()
    if rule_names is not None:
        unknown = set(rule_names) - set(passes)
        if unknown:
            raise ValueError(f"unknown rules: {sorted(unknown)}")
        passes = {k: v for k, v in passes.items() if k in rule_names}

    mods = list(modules) if modules is not None else collect_modules(paths)
    project = Project(mods)
    result = LintResult(modules=len(mods))

    all_findings: List[Finding] = []
    for mod in mods:
        if mod.tree is None:
            all_findings.append(
                Finding(
                    rule=SYNTAX_RULE,
                    path=mod.rel,
                    line=1,
                    col=0,
                    message="file does not parse",
                    text="",
                )
            )
    for pass_cls in passes.values():
        all_findings.extend(pass_cls().run(project))

    remaining = Counter(baseline) if baseline else Counter()
    by_rel = {m.rel: m for m in mods}
    for finding in sorted(all_findings, key=lambda f: (f.path, f.line, f.rule)):
        mod = by_rel.get(finding.path)
        if mod is not None and finding.line and mod.suppressed(finding):
            result.suppressed.append(finding)
        elif remaining.get(finding.key(), 0) > 0:
            remaining[finding.key()] -= 1
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    result.stale_baseline = sorted(
        key for key, count in remaining.items() if count > 0
    )
    return result


def render_text(result: LintResult, verbose: bool = False) -> str:
    out: List[str] = []
    for f in result.new:
        location = f"{f.path}:{f.line}:{f.col + 1}" if f.line else f.path
        out.append(f"{location}: [{f.rule}] {f.message}")
    if result.stale_baseline:
        out.append("")
        out.append(f"note: {len(result.stale_baseline)} stale baseline entr"
                   f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
                   "(fixed or moved; regenerate with --write-baseline):")
        for rule, path, text in result.stale_baseline:
            out.append(f"  [{rule}] {path}: {text[:80]}")
    summary = (
        f"{len(result.new)} finding(s), {len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined across {result.modules} file(s)"
    )
    out.append(("FAIL: " if result.new else "ok: ") + summary)
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.to_dict() for f in result.new],
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": [
            {"rule": r, "path": p, "text": t} for r, p, t in result.stale_baseline
        ],
        "modules": result.modules,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2)
