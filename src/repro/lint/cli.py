"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean (suppressed/baselined findings allowed), 1 = new
findings (or stale baseline entries under ``--fail-stale-baseline``),
2 = usage error (e.g. ``--rules`` naming an unregistered rule). The
same codes apply when running a subset via ``--rules rule-a,rule-b``;
``--list-rules`` prints the registry and exits 0. The default baseline
is the checked-in ``reprolint-baseline.json`` at the repository root
(i.e. the current directory); pass ``--no-baseline`` to see every
finding or ``--write-baseline`` to regenerate the file from the
current tree.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .framework import (
    load_baseline,
    registered_passes,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)

__all__ = ["DEFAULT_BASELINE", "build_parser", "main"]

DEFAULT_BASELINE = "reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files/directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--fail-stale-baseline",
        action="store_true",
        help="exit 1 when the baseline has entries matching no current "
        "source line (CI staleness gate; default only warns)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for name, cls in registered_passes().items():
            print(f"{name}: {cls.description}")
        return 0

    rule_names = None
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        baseline = load_baseline(baseline_path)

    try:
        result = run_lint(args.paths, rule_names=rule_names, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, result.new)
        print(
            f"wrote {len(result.new)} entr"
            f"{'y' if len(result.new) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    print(render_text(result) if args.fmt == "text" else render_json(result))
    if args.fail_stale_baseline and result.stale_baseline:
        print(
            f"error: {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(--fail-stale-baseline)",
            file=sys.stderr,
        )
        return 1
    return 0 if result.ok else 1
