"""dtype-discipline: explicit dtypes on the frozen-precision hot paths.

Three checks, all scoped to ``repro.neural`` / ``repro.sr`` /
``repro.codec`` / ``repro.core`` (the packages whose arithmetic PRs 1-4
froze against bit-identical baselines):

1. **Implicit-dtype allocation** — ``np.zeros/ones/empty/full/arange``
   without a ``dtype`` argument allocates whatever numpy defaults to,
   which is exactly how silent float64 promotion (or platform-dependent
   integer widths) sneaks into a float32-policy path. State the dtype.
2. **Bare builtin dtype** — ``dtype=float`` / ``.astype(int)`` /
   ``dtype="float"`` mean different widths on different platforms; use
   the explicit ``np.float64``-style name.
3. **float64 cast** — ``.astype(np.float64)`` and array-coercion calls
   with ``dtype=np.float64`` promote existing data to double precision.
   Each such cast on a hot path is either the sanctioned frozen-baseline
   policy (suppress it inline with a justification) or a regression.

Fresh allocations *with* ``dtype=np.float64`` are deliberately not check
3 violations: an explicit allocation states its precision where review
can see it; check 3 targets silent promotion of flowing data.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileLintPass, Finding, ModuleInfo, Project, register_pass
from .common import HOT_PACKAGES, np_call_name, numpy_aliases, walk_calls

__all__ = ["DtypeDisciplinePass"]

#: Allocation call -> 0-based positional index a dtype may occupy.
_ALLOC_DTYPE_POSITION = {"zeros": 1, "ones": 1, "empty": 1, "full": 2, "arange": 3}

#: Array-coercion calls whose dtype= kwarg casts existing data.
_COERCE_CALLS = ("asarray", "array", "ascontiguousarray", "asfortranarray")

# bool is a fixed-width 1-byte dtype; only float/int are platform-ambiguous.
_BARE_DTYPE_NAMES = ("float", "int")
_BARE_DTYPE_STRINGS = ("float", "int")


def _has_dtype_argument(call: ast.Call, positional_index: int) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    return len(call.args) > positional_index


def _is_bare_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id in _BARE_DTYPE_NAMES:
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in _BARE_DTYPE_STRINGS
    )


def _is_float64_dtype(node: ast.AST, aliases) -> bool:
    if (
        isinstance(node, ast.Attribute)
        and node.attr in ("float64", "double")
        and isinstance(node.value, ast.Name)
        and node.value.id in aliases
    ):
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in ("float64", "double", "d", "f8")
    )


@register_pass
class DtypeDisciplinePass(FileLintPass):
    name = "dtype-discipline"
    description = (
        "hot-path allocations must state a dtype; no bare builtin dtypes; "
        "float64 casts need an inline policy suppression"
    )

    def check_module(self, mod: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not mod.in_package(HOT_PACKAGES):
            return
        aliases = numpy_aliases(mod)
        assert mod.tree is not None
        for call in walk_calls(mod.tree):
            yield from self._check_call(mod, call, aliases)

    def _check_call(self, mod: ModuleInfo, call: ast.Call, aliases) -> Iterator[Finding]:
        np_name = np_call_name(call, aliases) if aliases else None

        if np_name in _ALLOC_DTYPE_POSITION:
            if not _has_dtype_argument(call, _ALLOC_DTYPE_POSITION[np_name]):
                yield self.finding(
                    mod,
                    call,
                    f"np.{np_name}(...) without an explicit dtype on a hot path "
                    "(implicit float64/platform-int allocation)",
                )

        dtype_values = [kw.value for kw in call.keywords if kw.arg == "dtype"]
        is_astype = isinstance(call.func, ast.Attribute) and call.func.attr == "astype"
        if is_astype and call.args:
            dtype_values.append(call.args[0])

        for value in dtype_values:
            if _is_bare_dtype(value):
                yield self.finding(
                    mod,
                    call,
                    "bare builtin dtype (float/int) is platform-ambiguous; "
                    "use an explicit np.float64-style dtype",
                )

        # np.array over a literal list/tuple is a fresh allocation stating
        # its precision, not a cast of flowing data.
        literal_alloc = (
            np_name == "array"
            and call.args
            and isinstance(call.args[0], (ast.List, ast.Tuple, ast.Constant))
        )
        if (is_astype or np_name in _COERCE_CALLS) and not literal_alloc:
            for value in dtype_values:
                if _is_float64_dtype(value, aliases):
                    yield self.finding(
                        mod,
                        call,
                        "float64 cast of flowing data on a hot path; if this is "
                        "the frozen-baseline f64 policy, suppress inline with "
                        "`# reprolint: disable=dtype-discipline -- <why>`",
                    )
