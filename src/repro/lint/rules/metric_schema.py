"""metric-schema: registry call sites pinned to the trace schema.

:class:`repro.observability.MetricsRegistry` catches a counter/histogram
name collision only at runtime — and only if the colliding pair happens
to fire in the same session. This pass collects every metric name the
``repro`` package can emit *statically* and checks the namespace as a
whole against the pinned registry
(:data:`repro.observability.schema.METRIC_FAMILIES`):

* every ``registry.counter("...")`` / ``registry.histogram("...")``
  call site with a literal name must name a registered family of the
  same kind;
* f-string names (``f"stage_ms/{span.name}"``) are dynamic *families*
  (interpolations become ``*``); the family pattern itself must be
  registered, with the same kind;
* a concrete name that a *different* dynamic family can also generate
  is a collision waiting for the right interpolation (the historical
  ``sr.dispatch/tiles_total`` vs ``f"sr.dispatch/tiles_{name}"`` bug —
  a backend named ``total`` silently merged counts);
* two registered dynamic families must not overlap (no string matches
  both), and every :data:`VOLATILE_METRIC_PREFIXES` entry must cover at
  least one registered family — a stripped prefix nothing emits under
  is dead schema;
* a metric name that is not statically analyzable (a bare variable) is
  itself a finding: the schema can only be pinned if names are literal.

Scoped to ``repro.*`` modules (scripts and tests *consume* metrics and
may probe arbitrary names).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ...observability.schema import METRIC_FAMILIES, VOLATILE_METRIC_PREFIXES
from ..framework import Finding, LintPass, ModuleInfo, Project, register_pass
from ..graph import dotted_parts

__all__ = ["MetricSchemaPass"]

_KINDS = ("counter", "histogram")

#: Modules whose ``.counter``/``.histogram`` calls are the registry's own
#: implementation, not emission sites.
_REGISTRY_IMPL = ("repro.observability.metrics",)


def _family_pattern(node: ast.JoinedStr) -> Optional[str]:
    """f-string -> family pattern with interpolations as ``*``."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            parts.append("*")
        else:
            return None
    return "".join(parts)


def _pattern_matches(pattern: str, name: str) -> bool:
    """Can ``pattern`` (with ``*`` wildcards) generate ``name``?"""
    pieces = pattern.split("*")
    if len(pieces) == 1:
        return pattern == name
    if not name.startswith(pieces[0]) or not name.endswith(pieces[-1]):
        return False
    pos = len(pieces[0])
    for piece in pieces[1:-1]:
        idx = name.find(piece, pos)
        if idx < 0:
            return False
        pos = idx + len(piece)
    return pos <= len(name) - len(pieces[-1])


def _patterns_overlap(a: str, b: str) -> bool:
    """Can two wildcard patterns generate a common string? Conservative:
    compares the literal prefixes and suffixes around the wildcards."""
    pa, sa = a.split("*", 1)[0], a.rsplit("*", 1)[-1]
    pb, sb = b.split("*", 1)[0], b.rsplit("*", 1)[-1]
    prefix_ok = pa.startswith(pb) or pb.startswith(pa)
    suffix_ok = sa.endswith(sb) or sb.endswith(sa)
    return prefix_ok and suffix_ok


class _Site:
    def __init__(
        self, mod: ModuleInfo, node: ast.Call, kind: str,
        name: Optional[str], pattern: Optional[str],
    ) -> None:
        self.mod = mod
        self.node = node
        self.kind = kind
        self.name = name  # concrete literal name
        self.pattern = pattern  # dynamic family pattern (f-string)


@register_pass
class MetricSchemaPass(LintPass):
    name = "metric-schema"
    description = (
        "every statically-collectable metric name must match the pinned "
        "METRIC_FAMILIES registry: right kind, no unregistered families, "
        "no concrete name a dynamic family can also generate"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        sites: List[_Site] = []
        relevant = False
        for mod in project.modules:
            if mod.tree is None or mod.name is None or mod.is_test:
                continue
            if not mod.in_package(["repro"]):
                continue
            relevant = True
            if mod.name in _REGISTRY_IMPL:
                continue
            yield from self._collect(mod, sites)
        if not relevant:
            return
        yield from self._check_sites(sites)
        yield from self._check_registry(project)

    # -- collection ------------------------------------------------------

    def _collect(self, mod: ModuleInfo, sites: List[_Site]) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _KINDS
                and node.args
            ):
                continue
            kind = node.func.attr
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                sites.append(_Site(mod, node, kind, name_arg.value, None))
            elif isinstance(name_arg, ast.JoinedStr):
                pattern = _family_pattern(name_arg)
                if pattern is None or "*" not in pattern:
                    yield self.finding(
                        mod,
                        node,
                        f"metric name passed to .{kind}() is an f-string the "
                        "pass cannot reduce to a family pattern; use a "
                        "literal prefix with interpolated suffixes",
                    )
                else:
                    sites.append(_Site(mod, node, kind, None, pattern))
            else:
                yield self.finding(
                    mod,
                    node,
                    f"metric name passed to .{kind}() is not statically "
                    "known; the metric namespace is pinned by "
                    "METRIC_FAMILIES, so names must be literals or f-strings "
                    "with literal structure",
                )

    # -- per-site checks against the pinned registry ---------------------

    def _check_sites(self, sites: List[_Site]) -> Iterator[Finding]:
        dynamic_families = [f for f in METRIC_FAMILIES if f.endswith("*")]
        for site in sites:
            if site.name is not None:
                yield from self._check_concrete(site, dynamic_families, sites)
            else:
                yield from self._check_dynamic(site)

    def _check_concrete(
        self, site: _Site, dynamic_families: List[str], sites: List[_Site]
    ) -> Iterator[Finding]:
        name = site.name
        assert name is not None
        exact = METRIC_FAMILIES.get(name)
        wildcard_hits = [f for f in dynamic_families if _pattern_matches(f, name)]
        if exact is None and not wildcard_hits:
            yield self.finding(
                site.mod,
                site.node,
                f"metric {name!r} is not a registered family; add it to "
                "METRIC_FAMILIES in repro/observability/schema.py (or fix "
                "the name)",
            )
            return
        if exact is not None and wildcard_hits:
            yield self.finding(
                site.mod,
                site.node,
                f"metric {name!r} is registered exactly but dynamic "
                f"famil{'y' if len(wildcard_hits) == 1 else 'ies'} "
                f"{', '.join(repr(f) for f in wildcard_hits)} can generate "
                "the same name; rename one so an interpolated value can "
                "never collide with the aggregate",
            )
        expected = exact if exact is not None else METRIC_FAMILIES[wildcard_hits[0]]
        if expected != site.kind:
            yield self.finding(
                site.mod,
                site.node,
                f"metric {name!r} is registered as a {expected} but used "
                f"here as a {site.kind}; MetricsRegistry would raise at "
                "runtime when both sites fire",
            )
        # A concrete name one of the *collected* dynamic sites can also
        # generate is the same collision even before registration.
        for other in sites:
            if (
                other.pattern is not None
                and not any(_pattern_matches(f, name) for f in wildcard_hits)
                and _pattern_matches(other.pattern, name)
            ):
                yield self.finding(
                    site.mod,
                    site.node,
                    f"metric {name!r} can also be generated by the dynamic "
                    f"family {other.pattern!r} at "
                    f"{other.mod.rel}:{other.node.lineno}; rename one",
                )

    def _check_dynamic(self, site: _Site) -> Iterator[Finding]:
        pattern = site.pattern
        assert pattern is not None
        registered = METRIC_FAMILIES.get(pattern)
        if registered is None:
            yield self.finding(
                site.mod,
                site.node,
                f"dynamic metric family {pattern!r} is not registered; add "
                "it to METRIC_FAMILIES in repro/observability/schema.py",
            )
        elif registered != site.kind:
            yield self.finding(
                site.mod,
                site.node,
                f"dynamic metric family {pattern!r} is registered as a "
                f"{registered} but used here as a {site.kind}",
            )

    # -- registry-level invariants ---------------------------------------

    def _check_registry(self, project: Project) -> Iterator[Finding]:
        schema_mod = project.by_name.get("repro.observability.schema")

        def registry_finding(message: str) -> Finding:
            mod = schema_mod
            if mod is None:
                # Whole-project finding with no anchoring module: attach
                # to the first module so paths stay meaningful.
                mod = project.modules[0]
            return self.finding(mod, None, message, text="METRIC_FAMILIES")

        families = list(METRIC_FAMILIES)
        dynamic = [f for f in families if f.endswith("*")]
        for i, a in enumerate(dynamic):
            for b in dynamic[i + 1 :]:
                if _patterns_overlap(a, b):
                    yield registry_finding(
                        f"dynamic metric families {a!r} and {b!r} overlap: "
                        "some interpolation matches both; disambiguate the "
                        "literal prefixes"
                    )
        for concrete in families:
            if concrete.endswith("*"):
                continue
            for f in dynamic:
                if _pattern_matches(f, concrete):
                    yield registry_finding(
                        f"registered metric {concrete!r} is also generable "
                        f"by dynamic family {f!r}; rename one"
                    )
        for prefix in VOLATILE_METRIC_PREFIXES:
            if not any(f.startswith(prefix) for f in families):
                yield registry_finding(
                    f"VOLATILE_METRIC_PREFIXES entry {prefix!r} covers no "
                    "registered metric family; dead schema"
                )
