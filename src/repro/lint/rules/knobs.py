"""knob-parity: the session-knob surfaces must agree, everywhere.

The same knob set is spelled out in five places: the serial executor
(:func:`repro.streaming.session.run_session`), the pipelined executor
(:func:`repro.streaming.pipelined.run_session_pipelined`), the shared
client-side applier/validator (``apply_client_knobs`` /
``_validate_abr_knobs``), the ``repro stream`` CLI flags, and the
experiment matrix (``run_session_matrix`` / ``_cached_session``). Every
recent plumbing regression was one of these drifting from the others,
so this pass pins them against each other:

* the pipelined executor exposes exactly the serial knobs (same names,
  same defaults) plus the documented executor extras
  (:data:`PIPELINED_EXTRAS`);
* ``apply_client_knobs``'s knobs are a subset of both executors' knobs
  with identical defaults, and both executors call it forwarding every
  one of those knobs by keyword;
* ``_validate_abr_knobs``'s mutual-exclusion list (the string literals
  naming conflicting knobs in its body) matches its own signature, and
  both executors call it forwarding every parameter;
* every serial knob is reachable from the CLI as ``--knob-name`` unless
  deliberately exempt (:data:`CLI_EXEMPT_KNOBS`), and every ``stream``
  flag maps back to a knob, a pipelined extra, or documented CLI-only
  plumbing (:data:`CLI_ONLY_FLAGS`);
* the matrix entry points agree on the executor-selection knobs
  (:data:`EXECUTOR_KNOBS`).

Surfaces absent from the linted project are skipped (the pass degrades
to a no-op on partial trees, e.g. single-file invocations).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import Finding, LintPass, ModuleInfo, Project, register_pass
from ..graph import Symbol, dotted_parts

__all__ = [
    "KnobParityPass",
    "SESSION_MODULE",
    "PIPELINED_MODULE",
    "CLI_MODULE",
    "PARALLEL_MODULE",
    "EXPERIMENTS_MODULE",
    "PIPELINED_EXTRAS",
    "CLI_EXEMPT_KNOBS",
    "CLI_ONLY_FLAGS",
    "EXECUTOR_KNOBS",
]

SESSION_MODULE = "repro.streaming.session"
PIPELINED_MODULE = "repro.streaming.pipelined"
CLI_MODULE = "repro.cli"
PARALLEL_MODULE = "repro.analysis.parallel"
EXPERIMENTS_MODULE = "repro.analysis.experiments"

#: Extra keyword parameters only the pipelined executor carries (ring
#: geometry and process count — executor shape, not session semantics).
PIPELINED_EXTRAS = ("depth", "workers", "slot_bytes")

#: run_session knobs deliberately *not* surfaced as ``repro stream``
#: flags: quality evaluation is a research-harness concern (the CLI
#: prints latency/energy), and link/adaptive objects are constructed
#: internally from --scenario/--abr rather than passed by value.
CLI_EXEMPT_KNOBS = frozenset(
    {
        "evaluate_quality",
        "with_lpips",
        "lpips_stride",
        "hr_reference_fn",
        "link",
        "link_deadline_ms",
        "adaptive",
        "skip_dropped",
    }
)

#: ``stream`` flag destinations that are command plumbing, not session
#: knobs (workload/device selection, budgets materialized into knob
#: objects, executor choice, trace export).
CLI_ONLY_FLAGS = frozenset(
    {
        "device",
        "frames",
        "profile",
        "pipelined",
        "trace_json",
        "dispatch_budget_ms",
        "net_budget_ms",
    }
)

#: Knobs that select between executors; the matrix entry points
#: (run_session_matrix, _cached_session) must both carry them.
EXECUTOR_KNOBS = ("pipelined",)


def _keyword_params(
    fn: ast.FunctionDef, skip: int = 0
) -> List[Tuple[str, Optional[ast.expr]]]:
    """(name, default-expression) pairs for a function's parameters,
    positional-or-keyword then keyword-only, skipping the first ``skip``."""
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    params = list(zip((a.arg for a in positional), defaults))[skip:]
    params.extend(
        (a.arg, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
    )
    return params


def _default_repr(default: Optional[ast.expr]) -> str:
    return "<required>" if default is None else ast.unparse(default)


def _same_default(a: Optional[ast.expr], b: Optional[ast.expr]) -> bool:
    if (a is None) != (b is None):
        return False
    if a is None:
        return True
    return ast.dump(a) == ast.dump(b)


@register_pass
class KnobParityPass(LintPass):
    name = "knob-parity"
    description = (
        "session knobs must agree across run_session, run_session_pipelined, "
        "apply_client_knobs/_validate_abr_knobs, the stream CLI flags, and "
        "the experiment matrix"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        table = project.symbols
        run_session = table.qualified(f"{SESSION_MODULE}.run_session")
        if run_session is None or run_session.kind != "function":
            return
        knobs = dict(_keyword_params(run_session.node, skip=3))

        pipelined = table.qualified(f"{PIPELINED_MODULE}.run_session_pipelined")
        if pipelined is not None and pipelined.kind == "function":
            yield from self._check_pipelined(run_session, pipelined, knobs)

        applier = table.qualified(f"{SESSION_MODULE}.apply_client_knobs")
        if applier is not None and applier.kind == "function":
            yield from self._check_shared_helper(
                applier, skip=1, knobs=knobs, executors=(run_session, pipelined)
            )

        validator = table.qualified(f"{SESSION_MODULE}._validate_abr_knobs")
        if validator is not None and validator.kind == "function":
            yield from self._check_shared_helper(
                validator, skip=1, knobs=knobs, executors=(run_session, pipelined)
            )
            yield from self._check_exclusion_literals(validator, knobs)

        cli = project.by_name.get(CLI_MODULE)
        if cli is not None and cli.tree is not None:
            yield from self._check_cli(cli, knobs)

        yield from self._check_matrix(table)

    # -- executor signature parity --------------------------------------

    def _check_pipelined(
        self,
        run_session: Symbol,
        pipelined: Symbol,
        knobs: Dict[str, Optional[ast.expr]],
    ) -> Iterator[Finding]:
        pipelined_knobs = dict(_keyword_params(pipelined.node, skip=3))
        for name, default in knobs.items():
            if name not in pipelined_knobs:
                yield self.finding(
                    pipelined.module,
                    pipelined.node,
                    f"run_session knob {name!r} is missing from "
                    "run_session_pipelined (the pipelined executor is a "
                    "drop-in: plumb the knob through or retire it)",
                )
            elif not _same_default(default, pipelined_knobs[name]):
                yield self.finding(
                    pipelined.module,
                    pipelined.node,
                    f"knob {name!r} defaults disagree: run_session has "
                    f"{_default_repr(default)}, run_session_pipelined has "
                    f"{_default_repr(pipelined_knobs[name])}",
                )
        for name in pipelined_knobs:
            if name not in knobs and name not in PIPELINED_EXTRAS:
                yield self.finding(
                    pipelined.module,
                    pipelined.node,
                    f"run_session_pipelined parameter {name!r} is neither a "
                    "run_session knob nor a documented executor extra "
                    f"({', '.join(PIPELINED_EXTRAS)}); add it to run_session "
                    "or to PIPELINED_EXTRAS in the knob-parity rule",
                )

    # -- shared helper parity -------------------------------------------

    def _check_shared_helper(
        self,
        helper: Symbol,
        skip: int,
        knobs: Dict[str, Optional[ast.expr]],
        executors: Tuple[Optional[Symbol], ...],
    ) -> Iterator[Finding]:
        helper_knobs = dict(_keyword_params(helper.node, skip=skip))
        for name, default in helper_knobs.items():
            if name not in knobs:
                yield self.finding(
                    helper.module,
                    helper.node,
                    f"{helper.name} parameter {name!r} is not a run_session "
                    "knob; the shared helper must mirror the executor surface",
                )
            elif default is not None and not _same_default(default, knobs[name]):
                yield self.finding(
                    helper.module,
                    helper.node,
                    f"{helper.name} default for {name!r} "
                    f"({_default_repr(default)}) disagrees with run_session "
                    f"({_default_repr(knobs[name])})",
                )
        for executor in executors:
            if executor is None:
                continue
            yield from self._check_forwarding(executor, helper, helper_knobs)

    def _check_forwarding(
        self,
        executor: Symbol,
        helper: Symbol,
        helper_knobs: Dict[str, Optional[ast.expr]],
    ) -> Iterator[Finding]:
        calls = [
            call
            for call in ast.walk(executor.node)
            if isinstance(call, ast.Call)
            and (dotted_parts(call.func) or ("",))[-1] == helper.name
        ]
        if not calls:
            yield self.finding(
                executor.module,
                executor.node,
                f"{executor.name} never calls {helper.name}; both executors "
                "must route knobs through the shared helper",
            )
            return
        for call in calls:
            passed = {kw.arg for kw in call.keywords if kw.arg is not None}
            missing = sorted(set(helper_knobs) - passed)
            if missing:
                yield self.finding(
                    executor.module,
                    call,
                    f"{executor.name} calls {helper.name} without forwarding "
                    f"{', '.join(missing)}; every knob must be passed "
                    "explicitly by keyword so drift is impossible",
                )

    # -- mutual-exclusion literal parity --------------------------------

    def _check_exclusion_literals(
        self, validator: Symbol, knobs: Dict[str, Optional[ast.expr]]
    ) -> Iterator[Finding]:
        params = {name for name, _ in _keyword_params(validator.node, skip=1)}
        literals = {
            node.value
            for node in ast.walk(validator.node)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in knobs
        }
        for name in sorted(params - literals):
            yield self.finding(
                validator.module,
                validator.node,
                f"{validator.name} takes {name!r} but its mutual-exclusion "
                "check never names it; add it to the conflicts list",
            )

    # -- CLI flag parity -------------------------------------------------

    def _check_cli(
        self, cli: ModuleInfo, knobs: Dict[str, Optional[ast.expr]]
    ) -> Iterator[Finding]:
        assert cli.tree is not None
        stream_parsers: set = set()
        stream_anchor: Optional[ast.AST] = None
        for node in ast.walk(cli.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and (dotted_parts(node.value.func) or ("",))[-1] == "add_parser"
                and node.value.args
                and isinstance(node.value.args[0], ast.Constant)
                and node.value.args[0].value == "stream"
            ):
                stream_anchor = node.value
                stream_parsers.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
        if not stream_parsers:
            return

        flags: Dict[str, ast.Call] = {}
        for node in ast.walk(cli.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in stream_parsers
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value.startswith("--")
            ):
                continue
            dest = node.args[0].value[2:].replace("-", "_")
            for kw in node.keywords:
                if kw.arg == "dest" and isinstance(kw.value, ast.Constant):
                    dest = kw.value.value
            flags[dest] = node

        for name in sorted(knobs):
            if name in CLI_EXEMPT_KNOBS or name in flags:
                continue
            yield self.finding(
                cli,
                stream_anchor,
                f"run_session knob {name!r} has no --{name.replace('_', '-')} "
                "flag on the stream subcommand; add the flag or list the knob "
                "in CLI_EXEMPT_KNOBS in the knob-parity rule",
            )
        for dest, node in sorted(flags.items()):
            if dest in knobs or dest in PIPELINED_EXTRAS or dest in CLI_ONLY_FLAGS:
                continue
            yield self.finding(
                cli,
                node,
                f"stream flag --{dest.replace('_', '-')} maps to no "
                "run_session knob or pipelined extra; plumb it through or "
                "list it in CLI_ONLY_FLAGS in the knob-parity rule",
            )

    # -- matrix parity ---------------------------------------------------

    def _check_matrix(self, table) -> Iterator[Finding]:
        matrix = table.qualified(f"{PARALLEL_MODULE}.run_session_matrix")
        cached = table.qualified(f"{EXPERIMENTS_MODULE}._cached_session")
        entries = [s for s in (matrix, cached) if s is not None and s.kind == "function"]
        if len(entries) < 2:
            return
        params = [dict(_keyword_params(s.node)) for s in entries]
        for knob in EXECUTOR_KNOBS:
            missing = [
                s for s, p in zip(entries, params) if knob not in p
            ]
            for sym in missing:
                yield self.finding(
                    sym.module,
                    sym.node,
                    f"matrix entry point {sym.name} is missing the executor "
                    f"knob {knob!r}",
                )
            if missing:
                continue
            defaults = [p[knob] for p in params]
            if not _same_default(defaults[0], defaults[1]):
                yield self.finding(
                    entries[1].module,
                    entries[1].node,
                    f"executor knob {knob!r} defaults disagree between "
                    f"{entries[0].name} ({_default_repr(defaults[0])}) and "
                    f"{entries[1].name} ({_default_repr(defaults[1])})",
                )
