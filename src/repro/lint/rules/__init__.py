"""The shipped reprolint rule set.

Importing this package registers every pass with the framework registry
(:func:`repro.lint.framework.register_pass`). Third-party / future
passes follow the same pattern: subclass ``LintPass`` (or
``FileLintPass``), decorate with ``@register_pass``, and import the
module before calling :func:`repro.lint.framework.run_lint`.

The per-file passes (dtype, epsilon, nondeterminism, imports,
public-api) inspect one module at a time; the whole-program passes
(knob-parity, contract-consistency, fork-safety, metric-schema) resolve
names and calls across modules through ``project.symbols`` /
``project.call_graph`` (:mod:`repro.lint.graph`).
"""

from __future__ import annotations

from . import (
    contracts_check,
    dtype,
    epsilon,
    fork_safety,
    imports,
    knobs,
    metric_schema,
    nondeterminism,
    public_api,
)
from .common import HOT_PACKAGES
from .contracts_check import ContractConsistencyPass
from .dtype import DtypeDisciplinePass
from .epsilon import EpsilonComparisonPass
from .fork_safety import ForkSafetyPass
from .imports import LAYERS, ImportHygienePass
from .knobs import KnobParityPass
from .metric_schema import MetricSchemaPass
from .nondeterminism import NondeterminismPass
from .public_api import PublicApiPass

__all__ = [
    "HOT_PACKAGES",
    "LAYERS",
    "ContractConsistencyPass",
    "DtypeDisciplinePass",
    "EpsilonComparisonPass",
    "ForkSafetyPass",
    "ImportHygienePass",
    "KnobParityPass",
    "MetricSchemaPass",
    "NondeterminismPass",
    "PublicApiPass",
]
