"""The shipped reprolint rule set.

Importing this package registers every pass with the framework registry
(:func:`repro.lint.framework.register_pass`). Third-party / future
passes follow the same pattern: subclass ``LintPass`` (or
``FileLintPass``), decorate with ``@register_pass``, and import the
module before calling :func:`repro.lint.framework.run_lint`.
"""

from __future__ import annotations

from . import dtype, epsilon, imports, nondeterminism, public_api
from .common import HOT_PACKAGES
from .dtype import DtypeDisciplinePass
from .epsilon import EpsilonComparisonPass
from .imports import LAYERS, ImportHygienePass
from .nondeterminism import NondeterminismPass
from .public_api import PublicApiPass

__all__ = [
    "HOT_PACKAGES",
    "LAYERS",
    "DtypeDisciplinePass",
    "EpsilonComparisonPass",
    "ImportHygienePass",
    "NondeterminismPass",
    "PublicApiPass",
]
