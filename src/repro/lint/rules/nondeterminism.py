"""nondeterminism: no unseeded randomness or wall-clock in core numerics.

The equivalence suites (frozen seed copies, golden SHA digests) only
work because every numeric path is a pure function of its inputs plus
an explicit seed. Scoped to the hot packages, this pass flags:

* legacy global-state numpy RNG calls (``np.random.rand`` & co.) — the
  module-level RandomState is process-global and order-dependent;
* ``np.random.default_rng()`` with *no* seed argument;
* stdlib ``random`` module calls (``random.random()``, a bare
  ``random.Random()``) — same global-state problem;
* wall-clock reads (``time.time``/``time_ns``) inside numeric code —
  timing belongs to the benchmark/observability layers.

Passing an ``np.random.Generator`` *in* (the repo idiom: every
stochastic function takes ``rng``) is untouched — the pass only looks
at construction sites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileLintPass, Finding, ModuleInfo, Project, register_pass
from .common import HOT_PACKAGES, attr_chain, module_aliases, walk_calls

__all__ = ["NondeterminismPass"]

#: np.random members that construct explicitly-seedable objects.
_SEEDABLE = ("default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937")


@register_pass
class NondeterminismPass(FileLintPass):
    name = "nondeterminism"
    description = (
        "unseeded RNG (np.random globals, bare default_rng()/Random(), stdlib "
        "random) or wall-clock reads in core numerics"
    )

    def check_module(self, mod: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not mod.in_package(HOT_PACKAGES):
            return
        np_aliases = module_aliases(mod, "numpy")
        random_aliases = module_aliases(mod, "random")
        time_aliases = module_aliases(mod, "time")
        assert mod.tree is not None
        for call in walk_calls(mod.tree):
            chain = attr_chain(call.func)
            if chain is None:
                continue
            if len(chain) == 3 and chain[0] in np_aliases and chain[1] == "random":
                member = chain[2]
                if member not in _SEEDABLE:
                    yield self.finding(
                        mod,
                        call,
                        f"np.random.{member}(...) uses the process-global "
                        "RandomState; construct a seeded np.random.default_rng "
                        "and thread it through",
                    )
                elif member == "default_rng" and not call.args and not call.keywords:
                    yield self.finding(
                        mod,
                        call,
                        "np.random.default_rng() without a seed is entropy-"
                        "seeded; pass an explicit seed (or accept an rng "
                        "argument)",
                    )
            elif len(chain) == 2 and chain[0] in random_aliases:
                if chain[1] == "Random" and (call.args or call.keywords):
                    continue  # random.Random(seed) is deterministic
                yield self.finding(
                    mod,
                    call,
                    f"stdlib random.{chain[1]}(...) in core numerics; use a "
                    "seeded np.random.default_rng threaded through arguments",
                )
            elif (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] in ("time", "time_ns")
            ):
                yield self.finding(
                    mod,
                    call,
                    "wall-clock read in core numerics; timing belongs in the "
                    "benchmark/observability layers",
                )
