"""nondeterminism: no unseeded randomness or wall-clock in core numerics.

The equivalence suites (frozen seed copies, golden SHA digests) only
work because every numeric path is a pure function of its inputs plus
an explicit seed. Scoped to the hot packages, this pass flags:

* legacy global-state numpy RNG calls (``np.random.rand`` & co.) — the
  module-level RandomState is process-global and order-dependent;
* ``np.random.default_rng()`` with *no* seed argument;
* stdlib ``random`` module calls (``random.random()``, a bare
  ``random.Random()``) — same global-state problem;
* wall-clock reads (``time.time``/``time_ns``) inside numeric code —
  timing belongs to the benchmark/observability layers.

Outside the hot packages the same checks apply *inside worker entry
points* — functions handed to ``multiprocessing.Process(target=...)``,
``ProcessPoolExecutor(initializer=...)``, ``pool.submit(f, ...)`` /
``pool.map(f, ...)``, or wrapped in ``functools.partial`` in a module
that spawns processes. A worker must be a deterministic replica of the
serial path (the pipelined executor's byte-identity guarantee depends on
it), and entropy-seeded RNG or ``time.time()`` inside one silently
diverges per process.

Passing an ``np.random.Generator`` *in* (the repo idiom: every
stochastic function takes ``rng``) is untouched — the pass only looks
at construction sites.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..framework import FileLintPass, Finding, ModuleInfo, Project, register_pass
from .common import HOT_PACKAGES, attr_chain, module_aliases, walk_calls

__all__ = ["NondeterminismPass"]

#: np.random members that construct explicitly-seedable objects.
_SEEDABLE = ("default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937")

#: Callables whose construction marks a module as process-spawning, and
#: whose ``target=``/``initializer=`` kwargs name worker entry points.
_SPAWNERS = ("Process", "ProcessPoolExecutor", "Pool", "Thread")

#: Methods whose first positional argument is dispatched to a worker.
_DISPATCHERS = (
    "submit",
    "map",
    "map_async",
    "apply",
    "apply_async",
    "imap",
    "imap_unordered",
    "starmap",
)


def _ref_name(node: ast.AST) -> Optional[str]:
    """The local function name a callable reference resolves to.

    Unwraps a direct ``partial(f, ...)`` wrapper; dotted references
    (``module.f``) resolve to their final attribute, which matches the
    local definition only when the function lives in this module.
    """
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain and chain[-1] == "partial" and node.args:
            return _ref_name(node.args[0])
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _worker_entry_names(tree: ast.Module) -> Set[str]:
    """Names of functions this module dispatches to worker processes."""
    names: Set[str] = set()
    spawns = False
    partial_refs: Set[str] = set()
    for call in walk_calls(tree):
        chain = attr_chain(call.func)
        callee = chain[-1] if chain else None
        if callee in _SPAWNERS:
            spawns = True
            for kw in call.keywords:
                if kw.arg in ("target", "initializer"):
                    ref = _ref_name(kw.value)
                    if ref:
                        names.add(ref)
        elif callee in _DISPATCHERS and call.args:
            ref = _ref_name(call.args[0])
            if ref:
                names.add(ref)
        elif callee == "partial" and call.args:
            # partial(f, ...) often builds the dispatched callable out of
            # line (build = partial(worker, ...); pool.map(build, ...));
            # count f as an entry point iff the module spawns processes.
            ref = _ref_name(call.args[0])
            if ref:
                partial_refs.add(ref)
    if spawns:
        names |= partial_refs
    return names


@register_pass
class NondeterminismPass(FileLintPass):
    name = "nondeterminism"
    description = (
        "unseeded RNG (np.random globals, bare default_rng()/Random(), stdlib "
        "random) or wall-clock reads in core numerics and worker entry points"
    )

    def check_module(self, mod: ModuleInfo, project: Project) -> Iterator[Finding]:
        assert mod.tree is not None
        np_aliases = module_aliases(mod, "numpy")
        random_aliases = module_aliases(mod, "random")
        time_aliases = module_aliases(mod, "time")

        if mod.in_package(HOT_PACKAGES):
            for call in walk_calls(mod.tree):
                yield from self._check_call(
                    mod, call, np_aliases, random_aliases, time_aliases,
                    where="core numerics",
                )
            return

        entry_names = _worker_entry_names(mod.tree)
        if not entry_names:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in entry_names:
                continue
            for call in walk_calls(node):
                yield from self._check_call(
                    mod, call, np_aliases, random_aliases, time_aliases,
                    where=f"worker entry point {node.name!r}",
                )

    def _check_call(
        self,
        mod: ModuleInfo,
        call: ast.Call,
        np_aliases: Set[str],
        random_aliases: Set[str],
        time_aliases: Set[str],
        where: str,
    ) -> Iterator[Finding]:
        chain = attr_chain(call.func)
        if chain is None:
            return
        if len(chain) == 3 and chain[0] in np_aliases and chain[1] == "random":
            member = chain[2]
            if member not in _SEEDABLE:
                yield self.finding(
                    mod,
                    call,
                    f"np.random.{member}(...) in {where} uses the process-"
                    "global RandomState; construct a seeded "
                    "np.random.default_rng and thread it through",
                )
            elif member == "default_rng" and not call.args and not call.keywords:
                yield self.finding(
                    mod,
                    call,
                    f"np.random.default_rng() without a seed in {where} is "
                    "entropy-seeded; pass an explicit seed (or accept an rng "
                    "argument)",
                )
        elif len(chain) == 2 and chain[0] in random_aliases:
            if chain[1] == "Random" and (call.args or call.keywords):
                return  # random.Random(seed) is deterministic
            yield self.finding(
                mod,
                call,
                f"stdlib random.{chain[1]}(...) in {where}; use a seeded "
                "np.random.default_rng threaded through arguments",
            )
        elif (
            len(chain) == 2
            and chain[0] in time_aliases
            and chain[1] in ("time", "time_ns")
        ):
            yield self.finding(
                mod,
                call,
                f"wall-clock read in {where}; timing belongs in the "
                "benchmark/observability layers",
            )
