"""contract-consistency: @shaped specs proven sane at lint time.

The runtime contracts (:mod:`repro.contracts`) only fire under
``REPRO_CONTRACTS=1``, so a malformed spec string or a call site that
can never satisfy one sits silent until the instrumented suite runs.
This pass promotes the cheap, static part of that checking to lint
time, project-wide:

* every ``@shaped(...)`` spec must be a string literal that
  :func:`repro.contracts.parse_spec` accepts;
* spec names must be parameters of the decorated function (the runtime
  raises the same error, but only once contracts are on);
* dimension tokens must follow the documented grammar: identifiers are
  UPPERCASE dimension variables, and a token that is itself a dtype or
  kind code (``f32``, ``n``) almost certainly lost its ``:`` separator;
* call sites whose argument is a statically-known numpy constructor
  (``np.zeros((h, w, 3), dtype=np.float32)`` and friends) are checked
  against the parameter's spec: the constructed rank, any literal
  dimensions, and the constructed dtype must satisfy at least one
  alternative.

Cross-argument dimension-variable binding stays a runtime concern (the
static shapes rarely pin both sides); everything this pass proves is a
necessary condition, so a finding is always a genuine contradiction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...contracts import DTYPE_CODES, KIND_CODES, ArraySpec, parse_spec
from ..framework import Finding, LintPass, ModuleInfo, Project, register_pass
from ..graph import Symbol, dotted_parts
from .common import module_aliases

__all__ = ["ContractConsistencyPass"]

_CONSTRUCTORS = ("zeros", "ones", "empty", "full")

#: numpy attribute -> spec dtype code, for ``dtype=np.float32`` kwargs.
_NUMPY_DTYPE_CODES: Dict[str, str] = {
    "float16": "f16",
    "float32": "f32",
    "float64": "f64",
    "uint8": "u8",
    "uint16": "u16",
    "uint32": "u32",
    "uint64": "u64",
    "int8": "i8",
    "int16": "i16",
    "int32": "i32",
    "int64": "i64",
    "bool_": "b",
}

#: What ``np.zeros``/``ones``/``empty``/``full`` build without ``dtype=``.
_DEFAULT_DTYPE_CODE = "f64"


def _dtype_code_ok(code: str, spec_dtype: Optional[str]) -> bool:
    """Does a concrete constructed dtype satisfy a spec dtype token?"""
    if spec_dtype is None:
        return True
    if spec_dtype in DTYPE_CODES:
        return code == spec_dtype
    kind = DTYPE_CODES[code].kind
    return kind in KIND_CODES[spec_dtype]


class _StaticArray:
    """Rank + known literal dims + dtype code of a numpy constructor call."""

    def __init__(self, rank: int, dims: Sequence[Optional[int]], code: str) -> None:
        self.rank = rank
        self.dims = list(dims)
        self.code = code

    def admits(self, alternatives: Sequence[ArraySpec]) -> bool:
        for alt in alternatives:
            if len(alt.dims) != self.rank:
                continue
            if not _dtype_code_ok(self.code, alt.dtype):
                continue
            ok = True
            for spec_dim, actual in zip(alt.dims, self.dims):
                if isinstance(spec_dim, int) and actual is not None and actual != spec_dim:
                    ok = False
                    break
            if ok:
                return True
        return False

    def describe(self) -> str:
        dims = ", ".join("?" if d is None else str(d) for d in self.dims)
        return f"rank-{self.rank} ({dims}) dtype {self.code}"


def _static_array(call: ast.Call, np_aliases: set) -> Optional[_StaticArray]:
    chain = dotted_parts(call.func)
    if not (
        chain
        and len(chain) == 2
        and chain[0] in np_aliases
        and chain[1] in _CONSTRUCTORS
        and call.args
    ):
        return None
    shape = call.args[0]
    dims: List[Optional[int]]
    if isinstance(shape, (ast.Tuple, ast.List)):
        if any(isinstance(e, ast.Starred) for e in shape.elts):
            return None
        dims = [
            e.value if isinstance(e, ast.Constant) and isinstance(e.value, int) else None
            for e in shape.elts
        ]
    elif isinstance(shape, ast.Constant) and isinstance(shape.value, int):
        dims = [shape.value]
    else:
        return None
    code = _DEFAULT_DTYPE_CODE
    for kw in call.keywords:
        if kw.arg != "dtype":
            continue
        dchain = dotted_parts(kw.value)
        if dchain and dchain[-1] in _NUMPY_DTYPE_CODES:
            code = _NUMPY_DTYPE_CODES[dchain[-1]]
        elif isinstance(kw.value, ast.Constant) and kw.value.value in _NUMPY_DTYPE_CODES:
            code = _NUMPY_DTYPE_CODES[kw.value.value]
        else:
            return None  # dtype not statically known
    return _StaticArray(rank=len(dims), dims=dims, code=code)


def _function_params(fn: ast.AST) -> List[str]:
    args = fn.args  # type: ignore[attr-defined]
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def _has_kwargs(fn: ast.AST) -> bool:
    return fn.args.kwarg is not None  # type: ignore[attr-defined]


@register_pass
class ContractConsistencyPass(LintPass):
    name = "contract-consistency"
    description = (
        "@shaped specs must parse, name real parameters, follow the dim "
        "grammar, and admit statically-known ndarray constructor call sites"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        table = project.symbols
        contracts: Dict[str, Dict[str, Tuple[ArraySpec, ...]]] = {}
        for mod in project.modules:
            if mod.tree is None or mod.name is None:
                continue
            yield from self._check_decorators(mod, table, contracts)
        if contracts:
            yield from self._check_call_sites(project, table, contracts)

    # -- decorator checking ---------------------------------------------

    def _is_shaped(self, mod: ModuleInfo, table, deco: ast.Call) -> bool:
        chain = dotted_parts(deco.func)
        if not chain:
            return False
        sym = table.resolve(mod.name, chain)
        if sym is not None:
            return sym.qualname.endswith(".shaped") and "contracts" in sym.module_name
        return chain[-1] == "shaped"

    def _check_decorators(
        self,
        mod: ModuleInfo,
        table,
        contracts: Dict[str, Dict[str, Tuple[ArraySpec, ...]]],
    ) -> Iterator[Finding]:
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if not (isinstance(deco, ast.Call) and self._is_shaped(mod, table, deco)):
                    continue
                params = set(_function_params(node))
                specs: Dict[str, Tuple[ArraySpec, ...]] = {}
                for kw in deco.keywords:
                    if kw.arg is None:
                        continue  # **specs forwarding: not statically known
                    if not (
                        isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        yield self.finding(
                            mod,
                            kw.value,
                            f"@shaped spec for {kw.arg!r} on {node.name} is "
                            "not a string literal; specs must be static so "
                            "they can be checked without running the code",
                        )
                        continue
                    text = kw.value.value
                    try:
                        alternatives = parse_spec(text)
                    except (TypeError, ValueError) as exc:
                        yield self.finding(
                            mod,
                            kw.value,
                            f"@shaped spec {text!r} for {kw.arg!r} on "
                            f"{node.name} does not parse: {exc}",
                        )
                        continue
                    yield from self._check_grammar(mod, kw.value, node.name, kw.arg, alternatives)
                    if kw.arg not in params and not _has_kwargs(node):
                        yield self.finding(
                            mod,
                            deco,
                            f"@shaped names {kw.arg!r} but {node.name} has no "
                            "such parameter (runtime would raise once "
                            "REPRO_CONTRACTS=1)",
                        )
                        continue
                    specs[kw.arg] = alternatives
                if specs:
                    # Index by every qualname the function answers to.
                    sym = table.qualified(f"{mod.name}.{node.name}")
                    if sym is not None and sym.node is node:
                        contracts[sym.qualname] = specs
                    else:
                        for qual, symbol in table.defs.items():
                            if symbol.node is node:
                                contracts[qual] = specs

    def _check_grammar(
        self,
        mod: ModuleInfo,
        anchor: ast.AST,
        fn_name: str,
        arg: str,
        alternatives: Tuple[ArraySpec, ...],
    ) -> Iterator[Finding]:
        for alt in alternatives:
            for dim in alt.dims:
                if not isinstance(dim, str) or dim == "*":
                    continue
                if dim in DTYPE_CODES or dim in KIND_CODES:
                    yield self.finding(
                        mod,
                        anchor,
                        f"@shaped spec for {arg!r} on {fn_name} uses dim "
                        f"token {dim!r}, which is a dtype code — missing the "
                        "':' separator?",
                    )
                elif not dim[0].isupper():
                    yield self.finding(
                        mod,
                        anchor,
                        f"@shaped spec for {arg!r} on {fn_name} uses "
                        f"lowercase dim variable {dim!r}; the grammar "
                        "reserves UPPERCASE for dimension variables",
                    )

    # -- call-site checking ---------------------------------------------

    def _check_call_sites(
        self,
        project: Project,
        table,
        contracts: Dict[str, Dict[str, Tuple[ArraySpec, ...]]],
    ) -> Iterator[Finding]:
        graph = project.call_graph
        for caller in table.functions():
            np_aliases = module_aliases(caller.module, "numpy")
            if not np_aliases:
                continue
            for call in ast.walk(caller.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = graph.resolve_call(caller, call)
                if callee is None or callee.qualname not in contracts:
                    continue
                specs = contracts[callee.qualname]
                for param, arg_node in self._bind(callee, call):
                    if param not in specs:
                        continue
                    if not isinstance(arg_node, ast.Call):
                        continue
                    static = _static_array(arg_node, np_aliases)
                    if static is None:
                        continue
                    if not static.admits(specs[param]):
                        spec_text = "|".join(a.describe() for a in specs[param])
                        yield self.finding(
                            caller.module,
                            arg_node,
                            f"argument {param!r} of {callee.name} is built as "
                            f"{static.describe()}, which can never satisfy "
                            f"its @shaped spec {spec_text!r}",
                        )

    def _bind(
        self, callee: Symbol, call: ast.Call
    ) -> Iterator[Tuple[str, ast.expr]]:
        params = _function_params(callee.node)
        if params and params[0] in ("self", "cls") and callee.kind == "method":
            if isinstance(call.func, ast.Attribute):
                params = params[1:]
        for pos, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                return
            if pos < len(params):
                yield params[pos], arg
        for kw in call.keywords:
            if kw.arg is not None:
                yield kw.arg, kw.value
