"""public-api: ``__all__`` is complete, resolvable, and mandatory.

Drift between what a module defines and what it exports is how private
helpers leak into downstream imports (and how genuinely public symbols
silently vanish from ``from x import *`` and the API tests). For every
module under ``repro``:

* the module must define a statically-parseable ``__all__`` (list or
  tuple of string literals) — except ``__main__`` entrypoints and
  modules whose own filename is underscore-private;
* every ``__all__`` entry must resolve to a top-level binding (def,
  class, assignment, or import);
* every top-level def/class/assignment with a public name must appear
  in ``__all__`` or be renamed with a leading underscore. Imported
  names are exempt: re-exports are opt-in via ``__all__``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..framework import FileLintPass, Finding, ModuleInfo, Project, register_pass

__all__ = ["PublicApiPass"]

_ROOT_PACKAGE = "repro"


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _top_level_bindings(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """(names defined in the module, names bound by imports)."""
    defined: Set[str] = set()
    imported: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                defined.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    imported.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: one level deep.
            for child in ast.walk(node):
                if isinstance(child, ast.Import):
                    for alias in child.names:
                        imported.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(child, ast.ImportFrom):
                    for alias in child.names:
                        if alias.name != "*":
                            imported.add(alias.asname or alias.name)
    return defined, imported


def _parse_all(tree: ast.Module) -> Tuple[Optional[List[str]], Optional[ast.stmt], bool]:
    """(entries, node, is_static). ``entries`` None when ``__all__`` absent;
    ``is_static`` False when present but not a literal list/tuple of str."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return [e.value for e in value.elts], node, True  # type: ignore[union-attr]
        return None, node, False
    return None, None, True


@register_pass
class PublicApiPass(FileLintPass):
    name = "public-api"
    description = (
        "__all__ must exist, every entry must resolve, and every public "
        "top-level symbol must be exported or underscored"
    )

    def check_module(self, mod: ModuleInfo, project: Project) -> Iterator[Finding]:
        if mod.name is None or not (
            mod.name == _ROOT_PACKAGE or mod.name.startswith(_ROOT_PACKAGE + ".")
        ):
            return
        last = mod.name.rsplit(".", 1)[-1]
        if last == "__main__" or last.startswith("_"):
            return
        assert mod.tree is not None

        entries, all_node, is_static = _parse_all(mod.tree)
        if all_node is None:
            yield self.finding(
                mod,
                mod.tree.body[0] if mod.tree.body else None,
                f"module {mod.name} defines no __all__; declare its public "
                "surface explicitly",
            )
            return
        if not is_static:
            yield self.finding(
                mod,
                all_node,
                "__all__ is not a literal list/tuple of strings, so the "
                "public surface cannot be checked statically",
            )
            return
        assert entries is not None

        defined, imported = _top_level_bindings(mod.tree)
        bindings = defined | imported
        exported = set(entries)
        for entry in entries:
            if entry not in bindings:
                yield self.finding(
                    mod,
                    all_node,
                    f"__all__ lists {entry!r} but the module defines no such "
                    "top-level binding",
                )
        for name in sorted(defined - exported):
            if name.startswith("_"):
                continue
            yield self.finding(
                mod,
                self._def_node(mod.tree, name) or all_node,
                f"public symbol {name!r} is not in __all__; export it or "
                "prefix it with an underscore",
            )

    @staticmethod
    def _def_node(tree: ast.Module, name: str) -> Optional[ast.stmt]:
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node.name == name:
                return node
            if isinstance(node, ast.Assign) and any(
                name in _target_names(t) for t in node.targets
            ):
                return node
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                return node
        return None
