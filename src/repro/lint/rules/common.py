"""Shared AST helpers for the rule passes."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from ..framework import ModuleInfo

__all__ = [
    "HOT_PACKAGES",
    "numpy_aliases",
    "module_aliases",
    "from_imported_names",
    "np_call_name",
    "attr_chain",
    "walk_calls",
]

#: The packages whose numerics PRs 1-4 froze: dtype discipline and
#: determinism are enforced here (ISSUE 5 tentpole).
HOT_PACKAGES = ("repro.neural", "repro.sr", "repro.codec", "repro.core")


def module_aliases(mod: ModuleInfo, module: str) -> Set[str]:
    """Names the file binds to ``module`` via ``import module [as alias]``."""
    aliases: Set[str] = set()
    assert mod.tree is not None
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def numpy_aliases(mod: ModuleInfo) -> Set[str]:
    return module_aliases(mod, "numpy")


def from_imported_names(mod: ModuleInfo, module: str) -> Dict[str, str]:
    """local name -> original name for ``from module import x [as y]``."""
    names: Dict[str, str] = {}
    assert mod.tree is not None
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``np.random.default_rng`` -> ("np", "random", "default_rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def np_call_name(node: ast.Call, aliases: Set[str]) -> Optional[str]:
    """``"zeros"`` when ``node`` calls ``np.zeros`` for any numpy alias."""
    chain = attr_chain(node.func)
    if chain and len(chain) == 2 and chain[0] in aliases:
        return chain[1]
    return None


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
