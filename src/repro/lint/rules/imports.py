"""import-hygiene: no module-level cycles, enforced package layering.

Migrated from ``scripts/check_import_cycles.py`` (now deleted): builds
the module-level import graph of the ``repro`` package from the parsed
ASTs — no imports are executed — and DFS-searches it for cycles.
Function-local lazy imports are intentionally ignored; they are the
sanctioned way to break a cycle.

On top of cycle detection this pass enforces the package layer order
(:data:`LAYERS`, lower = more foundational). A module may only import
packages of strictly lower rank, so e.g. ``repro.core`` can never grow
an import of ``repro.streaming``. New top-level packages must be added
to the table — an unknown package is itself a finding, which keeps the
architecture diagram in DESIGN.md and the enforced reality in sync.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..framework import Finding, LintPass, ModuleInfo, Project, register_pass

__all__ = ["ImportHygienePass", "LAYERS"]

#: Package -> layer rank. An import edge A -> B requires
#: ``LAYERS[pkg(B)] < LAYERS[pkg(A)]``. Entries may be whole top-level
#: packages or individual sub-layers inside one (longest prefix wins),
#: e.g. the base ``repro.sr`` filters/runners must not import the zoo
#: registry in ``repro.sr.backends``, which in turn must not import the
#: dispatcher built on top of it.
LAYERS: Dict[str, int] = {
    "repro.contracts": 0,
    "repro.cache": 1,
    "repro.neural": 1,
    "repro.network": 1,
    "repro.observability": 1,
    "repro.platform": 1,
    "repro.metrics": 1,
    "repro.render": 1,
    "repro.sr": 2,
    "repro.sr.backends": 3,
    "repro.sr.dispatch": 4,
    "repro.codec": 5,
    "repro.core": 5,
    "repro.streaming.adaptive": 5,
    "repro.streaming.abr": 6,
    "repro.streaming": 7,
    "repro.baselines": 8,
    "repro.analysis": 9,
    # The lint rules read the contracts grammar and the pinned metric
    # schema, so the linter sits high in the stack — nothing imports it.
    "repro.lint": 10,
    "repro.cli": 10,
    "repro": 11,
    "repro.__main__": 11,
}

_ROOT_PACKAGE = "repro"


def _package_of(module: str) -> str:
    """Longest LAYERS prefix of ``module``; top-level package otherwise."""
    parts = module.split(".")
    for i in range(len(parts), 1, -1):
        prefix = ".".join(parts[:i])
        if prefix in LAYERS:
            return prefix
    return ".".join(parts[:2]) if len(parts) > 1 else parts[0]


def _resolve_relative(
    module: str, node: ast.ImportFrom, is_package: bool
) -> Optional[str]:
    """Absolute target of a ``from ... import`` as seen from ``module``."""
    if node.level == 0:
        return node.module
    # Level 1 from a package __init__ means the package itself; from a
    # plain module it means the parent package — mirror the import system.
    parts = module.split(".")
    drop = node.level - (1 if is_package else 0)
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level import statements, including those inside try/if blocks
    (still executed at import time) but not inside function/class bodies."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try, ast.With)):
            for field in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, field, []):
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    elif isinstance(child, ast.stmt):
                        stack.append(child)


def _import_targets(
    mod: ModuleInfo,
) -> Iterator[Tuple[str, ast.stmt]]:
    """(possible absolute target, import node) pairs for one module."""
    assert mod.tree is not None and mod.name is not None
    for node in _module_level_imports(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node
        else:
            base = _resolve_relative(mod.name, node, mod.is_package_init)
            if base is None:
                continue
            yield base, node
            # ``from pkg import sub`` imports pkg.sub when it exists.
            for alias in node.names:
                yield f"{base}.{alias.name}", node


def _edges(
    mod: ModuleInfo, known: Set[str]
) -> Iterator[Tuple[str, ast.stmt]]:
    """Resolved (target module, import node) dependencies of ``mod``."""
    assert mod.name is not None
    seen: Set[str] = set()
    for target, node in _import_targets(mod):
        # Longest known prefix: importing pkg.mod.attr depends on pkg.mod.
        while target and target not in known:
            target = target.rpartition(".")[0]
        if not target or target == mod.name:
            continue
        if not target.startswith(_ROOT_PACKAGE):
            continue
        # A submodule importing its own ancestor package (``from . import
        # sibling``) is not a cycle: the ancestor is already present,
        # partially initialized, in sys.modules when the submodule runs.
        if mod.name.startswith(target + "."):
            continue
        if target in seen:
            continue
        seen.add(target)
        yield target, node


def _find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    white, grey, black = 0, 1, 2
    color = {node: white for node in graph}
    path: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = grey
        path.append(node)
        for dep in sorted(graph[node]):
            if color[dep] == grey:
                return path[path.index(dep):] + [dep]
            if color[dep] == white:
                cycle = dfs(dep)
                if cycle:
                    return cycle
        color[node] = black
        path.pop()
        return None

    for node in sorted(graph):
        if color[node] == white:
            cycle = dfs(node)
            if cycle:
                return cycle
    return None


@register_pass
class ImportHygienePass(LintPass):
    name = "import-hygiene"
    description = (
        "module-level import cycles in repro, and package-layering "
        "violations (e.g. repro.core importing repro.streaming)"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        mods = [
            m
            for m in project.modules
            if m.tree is not None
            and m.name is not None
            and (m.name == _ROOT_PACKAGE or m.name.startswith(_ROOT_PACKAGE + "."))
        ]
        if not mods:
            return
        known = {m.name for m in mods}
        graph: Dict[str, Set[str]] = {m.name: set() for m in mods}  # type: ignore[misc]
        by_name = {m.name: m for m in mods}

        for mod in mods:
            for target, node in _edges(mod, known):
                graph[mod.name].add(target)  # type: ignore[index]
                yield from self._check_layering(mod, target, node)

        cycle = _find_cycle(graph)
        if cycle:
            # Anchor the finding on the first module's offending import so
            # line-level suppression and baseline matching behave normally.
            first, second = cycle[0], cycle[1]
            mod = by_name[first]
            node = next(
                (n for t, n in _edges(mod, known) if t == second), None
            )
            yield self.finding(
                mod,
                node,
                "module-level import cycle: " + " -> ".join(cycle),
            )

    def _check_layering(
        self, mod: ModuleInfo, target: str, node: ast.stmt
    ) -> Iterator[Finding]:
        src_pkg = _package_of(mod.name)  # type: ignore[arg-type]
        dst_pkg = _package_of(target)
        if src_pkg == dst_pkg:
            return
        # A package __init__ aggregating its own subtree (``repro.sr``
        # re-exporting repro.sr.backends) is namespace plumbing, not a
        # layering edge; real cycles are still caught by the cycle pass.
        if mod.is_package_init and target.startswith(mod.name + "."):
            return
        src_rank = LAYERS.get(src_pkg)
        dst_rank = LAYERS.get(dst_pkg)
        if src_rank is None:
            yield self.finding(
                mod,
                node,
                f"package {src_pkg} is not in the repro.lint layer table; "
                "add it to LAYERS in repro/lint/rules/imports.py",
            )
            return
        if dst_rank is None:
            yield self.finding(
                mod,
                node,
                f"import of {dst_pkg}, which is not in the repro.lint layer "
                "table; add it to LAYERS in repro/lint/rules/imports.py",
            )
            return
        if dst_rank >= src_rank:
            yield self.finding(
                mod,
                node,
                f"layering violation: {src_pkg} (layer {src_rank}) must not "
                f"import {dst_pkg} (layer {dst_rank}); only strictly lower "
                "layers are importable",
            )
