"""epsilon-comparison: no inline float-literal tolerance comparisons.

Three of PR 4's Algorithm-1 bugs came from the same pattern: a magic
``1e-9``/``1e-12`` literal inside a comparison (``abs(a - b) < 1e-9``
tie-breaking, a ``+ 1e-12`` degenerate-bound bump). Exact comparison —
or a *named*, documented module-level tolerance constant — is the house
style; this pass flags the inline-literal form outside tests.

Flagged (comparators of one ``ast.Compare``):

* a tiny float literal (0 < \\|x\\| <= 1e-5) compared against an
  expression containing ``abs(...)`` or a subtraction — the classic
  fuzzy-equality shape;
* any comparator of the form ``expr +/- tiny-literal`` — an
  epsilon-bumped bound inside a comparison.

Deliberately *not* flagged: plain threshold guards (``norm < 1e-12``
with no abs/subtraction), epsilons in arithmetic outside comparisons
(``/ (x + 1e-8)`` normalizers), and named constants (naming forces the
tolerance through review once, at its definition).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..framework import FileLintPass, Finding, ModuleInfo, Project, register_pass

__all__ = ["EpsilonComparisonPass", "TINY_LITERAL_BOUND"]

#: Literals at or below this magnitude count as tolerance epsilons.
TINY_LITERAL_BOUND = 1e-5


def _tiny_literal(node: ast.AST) -> Optional[float]:
    """The value of a tiny float literal (handling unary minus), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _tiny_literal(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        value = node.value
        if value != 0.0 and abs(value) <= TINY_LITERAL_BOUND:
            return value
    return None


def _has_difference(node: ast.AST) -> bool:
    """True when the expression contains abs(...) or a subtraction."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Sub):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in ("abs", "fabs")
        ):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in ("abs", "fabs", "absolute")
        ):
            return True
    return False


def _bumped_bound(node: ast.AST) -> bool:
    """``expr + 1e-12`` / ``expr - 1e-12`` as a comparator."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, (ast.Add, ast.Sub))
        and (
            _tiny_literal(node.left) is not None
            or _tiny_literal(node.right) is not None
        )
    )


@register_pass
class EpsilonComparisonPass(FileLintPass):
    name = "epsilon-comparison"
    description = (
        "inline float-literal tolerance comparisons (abs(a-b) < 1e-9, "
        "+1e-12 bound bumps) outside tests"
    )

    def check_module(self, mod: ModuleInfo, project: Project) -> Iterator[Finding]:
        if mod.is_test:
            return
        assert mod.tree is not None
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left] + list(node.comparators)
            reported = False
            for left, right in zip(sides, sides[1:]):
                for literal_side, other in ((left, right), (right, left)):
                    if reported:
                        break
                    if _tiny_literal(literal_side) is not None and _has_difference(
                        other
                    ):
                        yield self.finding(
                            mod,
                            node,
                            "float-literal tolerance comparison (the PR-4 bug "
                            "pattern); compare exactly or hoist a named, "
                            "documented tolerance constant",
                        )
                        reported = True
            for side in sides:
                if reported:
                    break
                if _bumped_bound(side):
                    yield self.finding(
                        mod,
                        node,
                        "epsilon-bumped bound inside a comparison (+/- tiny "
                        "literal); use exact arithmetic (e.g. np.nextafter) or "
                        "a named tolerance constant",
                    )
                    reported = True
