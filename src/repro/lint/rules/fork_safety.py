"""fork-safety: the whole worker-reachable call tree must be fork-safe.

PR 6's syntactic worker-entry rule (part of ``nondeterminism``) checks
the function literally handed to ``Process(target=...)`` — but a worker
entry that immediately calls into another module escapes it entirely.
This pass generalizes the check to *reachability*: it resolves every
worker entry point project-wide (``Process``/``Pool``/
``ProcessPoolExecutor`` targets and initializers, executor ``submit``/
``map`` arguments, ``partial``-wrapped references, through imports),
closes over the call graph, and checks everything reachable:

* **no unseeded RNG or wall-clock reads** — entropy-seeded generators
  and ``time.time()`` silently diverge per process, breaking the
  pipelined executor's byte-identity guarantee. (Functions the
  per-file rule already covers — hot-package code and same-module
  syntactic entries — are skipped to avoid double reports.)
* **no captured SharedMemory handles** — a module-level
  ``SharedMemory``/``ShmRing`` binding read from worker-reachable code
  is a handle captured at fork time: the child inherits a descriptor
  the parent may close or unlink under it. Workers must *attach* by
  name instead. (Locally constructed rings are fine — they are owned
  and cleaned up by the creating process.)
* **no module-level mutable state** — a worker-reachable function that
  reads a module-level list/dict/set *that the module also mutates*, or
  rebinds a global, operates on state that silently forked: each
  process sees its own copy and they diverge. The one sanctioned idiom
  is exempt: a ``ProcessPoolExecutor(initializer=...)`` target exists
  precisely to populate per-process globals.

Findings name the worker entry point the offending function is
reachable from, so the spawn edge is auditable from the message.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..framework import Finding, LintPass, ModuleInfo, Project, register_pass
from ..graph import Symbol, callable_refs, dotted_parts
from .common import HOT_PACKAGES, module_aliases, walk_calls
from .nondeterminism import _DISPATCHERS, _SPAWNERS, _worker_entry_names

__all__ = ["ForkSafetyPass"]

#: Constructor names that produce OS-level shared-memory handles.
_SHM_CONSTRUCTORS = ("SharedMemory", "ShmRing")

#: AST nodes that build a mutable container at module level.
_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Methods that mutate the container they are called on.
_MUTATORS = (
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
)


def _worker_roots(
    project: Project, table
) -> Tuple[Dict[str, Symbol], Set[str]]:
    """(worker-entry symbols by qualname, initializer-entry qualnames)."""
    roots: Dict[str, Symbol] = {}
    initializers: Set[str] = set()
    for mod in project.modules:
        if mod.tree is None or mod.name is None:
            continue
        local_assigns: Dict[str, ast.expr] = {
            node.targets[0].id: node.value
            for node in ast.walk(mod.tree)
            if isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        }

        def resolve_ref(expr: ast.expr, depth: int = 0) -> List[Symbol]:
            symbols: List[Symbol] = []
            for chain in callable_refs(expr):
                sym = table.resolve(mod.name, chain)
                if sym is None and len(chain) == 1 and depth < 4:
                    # A local alias: build = partial(worker, ...).
                    assigned = local_assigns.get(chain[0])
                    if assigned is not None and assigned is not expr:
                        symbols.extend(resolve_ref(assigned, depth + 1))
                    continue
                if sym is not None and sym.kind in ("function", "method"):
                    symbols.append(sym)
            return symbols

        for call in walk_calls(mod.tree):
            chain = dotted_parts(call.func)
            callee = chain[-1] if chain else None
            if callee in _SPAWNERS:
                for kw in call.keywords:
                    if kw.arg not in ("target", "initializer"):
                        continue
                    for sym in resolve_ref(kw.value):
                        roots[sym.qualname] = sym
                        if kw.arg == "initializer":
                            initializers.add(sym.qualname)
            elif callee in _DISPATCHERS and call.args:
                for sym in resolve_ref(call.args[0]):
                    roots[sym.qualname] = sym
    return roots, initializers


def _module_state(mod: ModuleInfo, table) -> Tuple[Set[str], Set[str]]:
    """(mutable container globals that the module mutates, shm globals)."""
    assert mod.tree is not None and mod.name is not None
    containers: Set[str] = set()
    shm: Set[str] = set()
    for stmt in mod.tree.body:
        targets: List[ast.Name] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        if not targets or value is None:
            continue
        if isinstance(value, _MUTABLE_DISPLAYS) or (
            isinstance(value, ast.Call)
            and (dotted_parts(value.func) or ("",))[-1] in ("dict", "list", "set")
        ):
            containers.update(t.id for t in targets)
        elif isinstance(value, ast.Call):
            chain = dotted_parts(value.func)
            if chain and chain[-1] in _SHM_CONSTRUCTORS:
                shm.update(t.id for t in targets)

    mutated: Set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            target_list = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in target_list:
                if isinstance(target, (ast.Subscript, ast.Attribute)) and isinstance(
                    target.value, ast.Name
                ):
                    mutated.add(target.value.id)
        elif isinstance(node, ast.Global):
            mutated.update(node.names)
        elif isinstance(node, ast.Call):
            chain = dotted_parts(node.func)
            if chain and len(chain) == 2 and chain[-1] in _MUTATORS:
                mutated.add(chain[0])
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    mutated.add(target.value.id)
    return containers & mutated, shm


@register_pass
class ForkSafetyPass(LintPass):
    name = "fork-safety"
    description = (
        "functions reachable from multiprocessing worker entry points must "
        "not capture SharedMemory handles, mutated module globals, or "
        "unseeded RNG/wall-clock"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        table = project.symbols
        graph = project.call_graph
        roots, initializers = _worker_roots(project, table)
        if not roots:
            return
        origin = graph.reachable(roots)
        state_cache: Dict[str, Tuple[Set[str], Set[str]]] = {}
        entry_cache: Dict[str, Set[str]] = {}

        for qualname in sorted(origin):
            sym = table.defs.get(qualname)
            if sym is None or sym.kind not in ("function", "method"):
                continue
            mod = sym.module
            root = origin[qualname].rsplit(".", 1)[1]
            via = (
                "is a worker entry point"
                if qualname == origin[qualname]
                else f"is reachable from worker entry point {root!r}"
            )

            if mod.name not in state_cache:
                state_cache[mod.name] = _module_state(mod, table)
            mutated_containers, shm_globals = state_cache[mod.name]

            yield from self._check_globals(
                sym, via, mutated_containers, shm_globals,
                is_initializer=qualname in initializers,
            )
            yield from self._check_rng(sym, via, entry_cache)

    # -- shared/mutable state capture -----------------------------------

    def _check_globals(
        self,
        sym: Symbol,
        via: str,
        mutated_containers: Set[str],
        shm_globals: Set[str],
        is_initializer: bool,
    ) -> Iterator[Finding]:
        mod = sym.module
        # Names the function binds locally shadow the module globals.
        declared_global: Set[str] = set()
        local_bound: Set[str] = set()
        fn_args = sym.node.args  # type: ignore[attr-defined]
        local_bound.update(
            a.arg
            for a in (*fn_args.posonlyargs, *fn_args.args, *fn_args.kwonlyargs)
        )
        for extra in (fn_args.vararg, fn_args.kwarg):
            if extra is not None:
                local_bound.add(extra.arg)
        for node in ast.walk(sym.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                local_bound.add(node.id)
        local_bound -= declared_global
        for node in ast.walk(sym.node):
            if isinstance(node, ast.Global) and not is_initializer:
                yield self.finding(
                    mod,
                    node,
                    f"{sym.name} {via} and rebinds module global(s) "
                    f"{', '.join(node.names)}; per-process copies diverge "
                    "silently (only ProcessPoolExecutor initializers may "
                    "populate per-process globals)",
                )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in local_bound:
                    continue
                if node.id in shm_globals:
                    yield self.finding(
                        mod,
                        node,
                        f"{sym.name} {via} and reads module-level shared-"
                        f"memory handle {node.id!r}; workers must attach by "
                        "name, not inherit an open handle across fork",
                    )
                elif node.id in mutated_containers and not is_initializer:
                    yield self.finding(
                        mod,
                        node,
                        f"{sym.name} {via} and reads module-level mutable "
                        f"container {node.id!r}, which this module mutates; "
                        "each process sees a diverging copy — pass the state "
                        "in explicitly",
                    )

    # -- nondeterminism, beyond the per-file rule's sight ----------------

    def _check_rng(
        self, sym: Symbol, via: str, entry_cache: Dict[str, Set[str]]
    ) -> Iterator[Finding]:
        mod = sym.module
        # The per-file nondeterminism pass already checks hot-package code
        # (module-wide) and same-module syntactic worker entries; only
        # report what it cannot see.
        if mod.in_package(HOT_PACKAGES):
            return
        if mod.name not in entry_cache:
            entry_cache[mod.name] = (
                _worker_entry_names(mod.tree) if mod.tree is not None else set()
            )
        if sym.name in entry_cache[mod.name]:
            return
        np_aliases = module_aliases(mod, "numpy")
        random_aliases = module_aliases(mod, "random")
        time_aliases = module_aliases(mod, "time")
        for call in walk_calls(sym.node):
            chain = dotted_parts(call.func)
            if chain is None:
                continue
            if (
                len(chain) == 3
                and chain[0] in np_aliases
                and chain[1] == "random"
                and (
                    chain[2] not in ("default_rng", "Generator", "SeedSequence",
                                     "PCG64", "Philox", "MT19937")
                    or (chain[2] == "default_rng" and not call.args and not call.keywords)
                )
            ):
                yield self.finding(
                    mod,
                    call,
                    f"{sym.name} {via} and constructs process-divergent "
                    f"randomness (np.random.{chain[2]}); thread a seeded "
                    "generator through instead",
                )
            elif len(chain) == 2 and chain[0] in random_aliases:
                if chain[1] == "Random" and (call.args or call.keywords):
                    continue
                yield self.finding(
                    mod,
                    call,
                    f"{sym.name} {via} and calls stdlib random.{chain[1]}; "
                    "per-process global RNG state diverges across workers",
                )
            elif (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] in ("time", "time_ns")
            ):
                yield self.finding(
                    mod,
                    call,
                    f"{sym.name} {via} and reads the wall clock; worker "
                    "results must be a pure function of their inputs",
                )
