"""Whole-program layer: symbol table, name binding, and call graph.

Built on top of the per-file :class:`~repro.lint.framework.ModuleInfo`
parse results, this module gives interprocedural passes three things:

* :class:`SymbolTable` — every top-level function, class, method, and
  module-level variable in the project under a dotted *qualname*
  (``repro.streaming.session.run_session``), plus per-module import
  bindings so a name written in one module resolves to the symbol it
  denotes in another (including ``import x as y``, ``from a.b import c
  as d``, and re-export chains through package ``__init__`` files).
* :class:`CallGraph` — resolved call edges between those symbols, with
  BFS reachability (:meth:`CallGraph.reachable`) that maps every
  reached function back to the root it came from, for diagnostics.
* :func:`callable_refs` — the function references an expression can
  denote (unwrapping ``functools.partial`` and conditional expressions),
  used to resolve worker ``target=`` arguments project-wide.

Resolution is deliberately conservative and static: only names that
bind to project symbols through imports or local definitions resolve;
attribute access on runtime values (``server.next_frame``) yields no
edge. Function-local imports are folded into the module's binding
environment — an approximation that trades scope fidelity for seeing
the sanctioned lazy-import idiom, which is exactly where cross-layer
calls hide.

Everything here is lazy: :class:`~repro.lint.framework.Project` exposes
``project.symbols`` / ``project.call_graph`` properties that build the
structures on first use and share them across passes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .framework import ModuleInfo, Project

__all__ = ["Symbol", "SymbolTable", "CallGraph", "callable_refs", "dotted_parts"]


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` expression -> ("a", "b", "c"); None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _relative_base(module: str, node: ast.ImportFrom, is_package: bool) -> Optional[str]:
    """Absolute module a ``from ... import`` pulls from, seen from ``module``."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    drop = node.level - (1 if is_package else 0)
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def callable_refs(node: ast.AST) -> List[Tuple[str, ...]]:
    """Dotted references an expression may pass as a callable.

    Unwraps ``partial(f, ...)`` to ``f`` and follows both arms of a
    conditional expression (``partial(f, x=1) if flag else f``).
    """
    if isinstance(node, ast.Call):
        chain = dotted_parts(node.func)
        if chain and chain[-1] == "partial" and node.args:
            return callable_refs(node.args[0])
        return []
    if isinstance(node, ast.IfExp):
        return callable_refs(node.body) + callable_refs(node.orelse)
    chain = dotted_parts(node)
    return [chain] if chain else []


@dataclass(frozen=True)
class Symbol:
    """One project-level definition, addressed by dotted qualname."""

    qualname: str
    module_name: str
    kind: str  # "function" | "class" | "method" | "variable"
    node: ast.AST = field(compare=False, repr=False)
    module: ModuleInfo = field(compare=False, repr=False)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]


class SymbolTable:
    """Project-wide qualname index plus per-module name bindings."""

    def __init__(self, project: Project) -> None:
        self.defs: Dict[str, Symbol] = {}
        #: module name -> local name -> absolute dotted target.
        self.bindings: Dict[str, Dict[str, str]] = {}
        self._modules: Dict[str, ModuleInfo] = {
            m.name: m for m in project.modules if m.name and m.tree is not None
        }
        for mod in self._modules.values():
            self._index_module(mod)

    # -- construction ---------------------------------------------------

    def _index_module(self, mod: ModuleInfo) -> None:
        assert mod.tree is not None and mod.name is not None
        name = mod.name
        bindings = self.bindings.setdefault(name, {})
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bindings[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        bindings[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = _relative_base(name, node, mod.is_package_init)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bindings[alias.asname or alias.name] = f"{base}.{alias.name}"
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(mod, f"{name}.{stmt.name}", "function", stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._add(mod, f"{name}.{stmt.name}", "class", stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(
                            mod, f"{name}.{stmt.name}.{sub.name}", "method", sub
                        )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._add(mod, f"{name}.{target.id}", "variable", stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self._add(mod, f"{name}.{stmt.target.id}", "variable", stmt)

    def _add(self, mod: ModuleInfo, qualname: str, kind: str, node: ast.AST) -> None:
        # First binding wins: later re-assignments of a module variable
        # don't change what the name statically denotes for our purposes.
        self.defs.setdefault(
            qualname,
            Symbol(
                qualname=qualname,
                module_name=mod.name,  # type: ignore[arg-type]
                kind=kind,
                node=node,
                module=mod,
            ),
        )

    # -- lookup ---------------------------------------------------------

    def module(self, name: str) -> Optional[ModuleInfo]:
        return self._modules.get(name)

    def functions(self) -> Iterator[Symbol]:
        for sym in self.defs.values():
            if sym.kind in ("function", "method"):
                yield sym

    def resolve(
        self, module_name: str, dotted: Sequence[str]
    ) -> Optional[Symbol]:
        """Resolve a dotted reference as written inside ``module_name``."""
        if not dotted:
            return None
        head = dotted[0]
        local = f"{module_name}.{head}"
        if local in self.defs:
            if len(dotted) == 1:
                return self.defs[local]
            # Attribute on a local definition (Class.method).
            return self.qualified(".".join([local, *dotted[1:]]))
        target = self.bindings.get(module_name, {}).get(head)
        if target is not None:
            return self.qualified(".".join([target, *dotted[1:]]))
        return None

    def qualified(
        self, qualname: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Symbol]:
        """Resolve an absolute dotted path, chasing re-export bindings."""
        seen = _seen if _seen is not None else set()
        if qualname in seen:
            return None
        seen.add(qualname)
        if qualname in self.defs:
            return self.defs[qualname]
        parts = qualname.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:i])
            if mod_name not in self._modules:
                continue
            attrs = parts[i:]
            # ``from .framework import run_lint`` in a package __init__
            # makes ``pkg.run_lint`` an alias for the real definition.
            target = self.bindings.get(mod_name, {}).get(attrs[0])
            if target is not None:
                return self.qualified(".".join([target, *attrs[1:]]), seen)
            return self.defs.get(qualname)
        return None


class CallGraph:
    """Resolved call edges between project function/method symbols."""

    def __init__(self, project: Project, table: Optional[SymbolTable] = None) -> None:
        self.table = table if table is not None else project.symbols
        #: caller qualname -> set of callee qualnames.
        self.edges: Dict[str, Set[str]] = {}
        #: (caller, callee) -> call nodes, for diagnostics.
        self.sites: Dict[Tuple[str, str], List[ast.Call]] = {}
        for sym in self.table.functions():
            self._index(sym)

    def _index(self, sym: Symbol) -> None:
        callees = self.edges.setdefault(sym.qualname, set())
        for node in ast.walk(sym.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_call(sym, node)
            if callee is None:
                continue
            callees.add(callee.qualname)
            self.sites.setdefault((sym.qualname, callee.qualname), []).append(node)

    def resolve_call(self, sym: Symbol, call: ast.Call) -> Optional[Symbol]:
        """The function/method symbol a call inside ``sym`` dispatches to."""
        chain = dotted_parts(call.func)
        if not chain:
            return None
        target: Optional[Symbol]
        if chain[0] == "self" and sym.kind == "method" and len(chain) == 2:
            owner = sym.qualname.rsplit(".", 1)[0]
            target = self.table.qualified(f"{owner}.{chain[1]}")
        else:
            target = self.table.resolve(sym.module_name, chain)
        if target is not None and target.kind == "class":
            # Constructing a class runs its __init__ when it defines one.
            init = self.table.qualified(f"{target.qualname}.__init__")
            if init is not None:
                target = init
        if target is not None and target.kind in ("function", "method"):
            return target
        return None

    def callers_of(self, qualname: str) -> Set[str]:
        return {src for src, dsts in self.edges.items() if qualname in dsts}

    def reachable(self, roots: Iterable[str]) -> Dict[str, str]:
        """BFS closure over call edges: reached qualname -> its root."""
        origin: Dict[str, str] = {}
        queue: List[str] = []
        for root in roots:
            if root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin
